//! # kfds-tree — geometric substrate for `kernel-fds`
//!
//! Point sets, the ball-tree partitioner that induces the hierarchical
//! ordering of the kernel matrix, exact k-nearest-neighbor search (used by
//! ASKIT's skeletonization row sampling), and seeded synthetic dataset
//! generators standing in for the paper's real-world data (see `DESIGN.md`
//! for the substitution rationale).

#![forbid(unsafe_code)]

pub mod balltree;
pub mod datasets;
pub mod dist_tiles;
pub mod neighbors;
pub mod points;

pub use balltree::{BallTree, Node, SplitRule};
pub use dist_tiles::{blocked_tile_count, knn_blocked_active, set_knn_blocked};
pub use neighbors::{knn_all, knn_approximate, knn_brute_force, knn_recall, NeighborLists};
pub use points::{sq_dist, PointSet};
