//! Blocked squared-distance tiles — the BLAS-3 primitive under both kNN
//! paths.
//!
//! A pairwise-distance block is a rank-`d` GEMM plus a norms epilogue:
//! `D[i, j] = ‖x_i‖² + ‖x_j‖² − 2 x_iᵀx_j`, the same norms+Gram identity
//! the kernel block assembly uses (`kfds_kernels::eval_block`). The Gram
//! pass goes through the packed SIMD GEMM; the epilogue is the vectorized
//! [`kfds_la::simd::dist_epilogue`] kernel next to the GSKS tiles. Every
//! temporary comes from [`kfds_la::workspace`], so the tile routines are
//! allocation-free on the hot path (this module is on the `kfds-lint`
//! `hot-path-alloc` list).
//!
//! Dispatch follows the repo's kill-switch convention: `KFDS_KNN=scalar`
//! (or `off`/`0`) routes [`crate::neighbors`] onto the legacy per-pair
//! scalar paths, and [`set_knn_blocked`] overrides the environment at
//! runtime for A/B harnesses. [`blocked_tile_count`] counts GEMM tiles so
//! the `perf_trajectory --check knn` gate can detect a silent fallback.
//!
//! # Tolerance model
//!
//! The expanded form carries a cancellation residual of `O(eps · ‖x‖²)`
//! absolute, so tiny distances lose relative accuracy (and can go
//! negative — the epilogue clamps at zero). The neighbor search uses tile
//! distances only to *select* candidates and recomputes the reported
//! distances with the scalar `sq_dist`, so selection agrees with the
//! scalar path unless two distinct candidate distances straddle the k-th
//! boundary within that residual.

use crate::points::PointSet;
use kfds_la::{gemm, simd, workspace, MatMut, MatRef, Trans};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

static BLOCKED: AtomicBool = AtomicBool::new(true);
static ENV_INIT: Once = Once::new();
static TILES: AtomicU64 = AtomicU64::new(0);

/// Whether the kNN paths route through the blocked GEMM-tile pipeline
/// (env `KFDS_KNN` + runtime override).
#[inline]
pub fn knn_blocked_active() -> bool {
    ENV_INIT.call_once(|| {
        if kfds_switches::KFDS_KNN.is_off() {
            BLOCKED.store(false, Ordering::Relaxed);
        }
    });
    BLOCKED.load(Ordering::Relaxed)
}

/// Enables or disables the blocked kNN pipeline at runtime (overrides
/// `KFDS_KNN`), so the perf harness can A/B both paths in one process.
pub fn set_knn_blocked(on: bool) {
    let _ = knn_blocked_active(); // apply the env default first
    BLOCKED.store(on, Ordering::Relaxed);
}

/// Number of GEMM distance tiles computed since process start — the
/// dispatch witness for the `perf_trajectory -- --check knn` gate.
pub fn blocked_tile_count() -> u64 {
    TILES.load(Ordering::Relaxed)
}

/// Computes the squared-distance tile between two **contiguous** position
/// ranges of `pts`: `out[i, j] = ‖x_{q.start+i} − x_{c.start+j}‖²`.
///
/// Both coordinate panels are zero-copy views of the column-major point
/// storage (the layout exists for exactly this); `sq_norms` caches
/// `‖x_i‖²` for every point (see [`PointSet::sq_norms_into`]).
///
/// # Panics
/// Panics if `out` is not `q.len() x c.len()` or `sq_norms` shorter than
/// the point count.
pub fn dist_tile_ranges(
    pts: &PointSet,
    sq_norms: &[f64],
    q: Range<usize>,
    c: Range<usize>,
    mut out: MatMut<'_>,
) {
    let d = pts.dim();
    let (m, n) = (q.len(), c.len());
    assert_eq!(out.nrows(), m, "dist_tile_ranges: row mismatch");
    assert_eq!(out.ncols(), n, "dist_tile_ranges: col mismatch");
    assert!(sq_norms.len() >= pts.len(), "dist_tile_ranges: sq_norms too short");
    if m == 0 || n == 0 {
        return;
    }
    let xq = MatRef::from_parts(&pts.as_slice()[q.start * d..q.end * d], d, m, d);
    let xc = MatRef::from_parts(&pts.as_slice()[c.start * d..c.end * d], d, n, d);
    gemm(1.0, xq, Trans::Yes, xc, Trans::No, 0.0, out.rb_mut());
    let qn = &sq_norms[q.start..q.end];
    for j in 0..n {
        simd::dist_epilogue(out.col_mut(j), qn, sq_norms[c.start + j]);
    }
    TILES.fetch_add(1, Ordering::Relaxed);
}

/// Computes the squared-distance tile between a contiguous query range
/// and a gathered candidate list: `out[i, j] = ‖x_{q.start+i} − x_{cands[j]}‖²`.
///
/// The candidate panel is gathered into pooled scratch (one copy per
/// candidate — the price of a scattered column list), then the same
/// Gram-GEMM + norms-epilogue pipeline runs.
///
/// # Panics
/// Panics if `out` is not `q.len() x cands.len()`, `sq_norms` is shorter
/// than the point count, or a candidate id is out of range.
pub fn dist_tile_gather(
    pts: &PointSet,
    sq_norms: &[f64],
    q: Range<usize>,
    cands: &[u32],
    mut out: MatMut<'_>,
) {
    let d = pts.dim();
    let (m, n) = (q.len(), cands.len());
    assert_eq!(out.nrows(), m, "dist_tile_gather: row mismatch");
    assert_eq!(out.ncols(), n, "dist_tile_gather: col mismatch");
    assert!(sq_norms.len() >= pts.len(), "dist_tile_gather: sq_norms too short");
    if m == 0 || n == 0 {
        return;
    }
    let mut xc = workspace::take(d * n);
    for (j, &cid) in cands.iter().enumerate() {
        xc[j * d..(j + 1) * d].copy_from_slice(pts.point(cid as usize));
    }
    let xq = MatRef::from_parts(&pts.as_slice()[q.start * d..q.end * d], d, m, d);
    let xcv = MatRef::from_parts(&xc, d, n, d);
    gemm(1.0, xq, Trans::Yes, xcv, Trans::No, 0.0, out.rb_mut());
    let qn = &sq_norms[q.start..q.end];
    for (j, &cid) in cands.iter().enumerate() {
        simd::dist_epilogue(out.col_mut(j), qn, sq_norms[cid as usize]);
    }
    TILES.fetch_add(1, Ordering::Relaxed);
}

/// Computes the symmetric squared-distance tile among a gathered id list:
/// `out[i, j] = ‖x_{ids[i]} − x_{ids[j]}‖²`.
///
/// This is the approximate path's bucket primitive: every projection-tree
/// bucket scores all its members against each other in one rank-`d` Gram
/// GEMM (the gathered panel is both operands), so candidate scoring is
/// BLAS-3 even though bucket members are scattered in tree order. The
/// diagonal comes out exactly `0.0` (the clamp absorbs the
/// `‖x‖² − ‖x‖²` cancellation).
///
/// # Panics
/// Panics if `out` is not `ids.len() x ids.len()`, `sq_norms` is shorter
/// than the point count, or an id is out of range.
pub fn dist_tile_sym(pts: &PointSet, sq_norms: &[f64], ids: &[u32], mut out: MatMut<'_>) {
    let d = pts.dim();
    let n = ids.len();
    assert_eq!(out.nrows(), n, "dist_tile_sym: row mismatch");
    assert_eq!(out.ncols(), n, "dist_tile_sym: col mismatch");
    assert!(sq_norms.len() >= pts.len(), "dist_tile_sym: sq_norms too short");
    if n == 0 {
        return;
    }
    let mut xc = workspace::take(d * n);
    let mut rn = workspace::take(n);
    for (j, &cid) in ids.iter().enumerate() {
        xc[j * d..(j + 1) * d].copy_from_slice(pts.point(cid as usize));
        rn[j] = sq_norms[cid as usize];
    }
    let xcv = MatRef::from_parts(&xc, d, n, d);
    gemm(1.0, xcv, Trans::Yes, xcv, Trans::No, 0.0, out.rb_mut());
    for j in 0..n {
        simd::dist_epilogue(out.col_mut(j), &rn, rn[j]);
    }
    TILES.fetch_add(1, Ordering::Relaxed);
}

/// Scores one query point against a scattered candidate list:
/// `out[j] = ‖x_q − x_{cands[j]}‖²` via the norms+Gram identity.
///
/// This is the degenerate one-row tile for scattered candidate lists too
/// short (or too irregular) to justify a gathered GEMM panel: an `m = 1`
/// GEMM would waste the packed microkernel's row blocking, so the Gram
/// pass is one SIMD dot per candidate (the coordinate panel is read in
/// place — no gather), with the same clamped epilogue as the big tiles.
///
/// # Panics
/// Panics if `out.len() != cands.len()`, `sq_norms` is shorter than the
/// point count, or a candidate id is out of range.
pub fn dist_row(pts: &PointSet, sq_norms: &[f64], q: usize, cands: &[u32], out: &mut [f64]) {
    assert_eq!(out.len(), cands.len(), "dist_row: output length mismatch");
    assert!(sq_norms.len() >= pts.len(), "dist_row: sq_norms too short");
    if cands.is_empty() {
        return;
    }
    let qp = pts.point(q);
    let qn = sq_norms[q];
    for (o, &c) in out.iter_mut().zip(cands) {
        let g = kfds_la::blas1::dot(qp, pts.point(c as usize));
        *o = (-2.0f64).mul_add(g, qn + sq_norms[c as usize]).max(0.0);
    }
    TILES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::sq_dist;

    fn pts(n: usize, d: usize, seed: u64) -> PointSet {
        let mut state = seed | 1;
        let mut data = Vec::with_capacity(n * d);
        for _ in 0..n * d {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push(((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0);
        }
        PointSet::from_col_major(d, data)
    }

    #[test]
    fn range_tile_matches_scalar_distances() {
        let p = pts(40, 7, 5);
        let mut norms = vec![0.0; p.len()];
        p.sq_norms_into(&mut norms);
        let mut out = kfds_la::Mat::zeros(8, 11);
        dist_tile_ranges(&p, &norms, 3..11, 20..31, out.rb_mut());
        for i in 0..8 {
            for j in 0..11 {
                let want = sq_dist(p.point(3 + i), p.point(20 + j));
                let got = out[(i, j)];
                assert!((got - want).abs() <= 1e-12 * (1.0 + want), "({i},{j}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn gather_tile_matches_scalar_distances_and_counts() {
        let p = pts(30, 5, 9);
        let mut norms = vec![0.0; p.len()];
        p.sq_norms_into(&mut norms);
        let cands: Vec<u32> = vec![29, 0, 17, 3, 3];
        let before = blocked_tile_count();
        let mut out = kfds_la::Mat::zeros(6, cands.len());
        dist_tile_gather(&p, &norms, 10..16, &cands, out.rb_mut());
        assert!(blocked_tile_count() > before);
        for i in 0..6 {
            for (j, &c) in cands.iter().enumerate() {
                let want = sq_dist(p.point(10 + i), p.point(c as usize));
                assert!((out[(i, j)] - want).abs() <= 1e-12 * (1.0 + want));
            }
        }
    }

    #[test]
    fn coincident_points_clamp_to_zero() {
        // 16 copies of the same point: every pairwise distance is exactly 0
        // after the clamp, never negative.
        let data: Vec<f64> = (0..16).flat_map(|_| [1.5, -2.25, 0.5]).collect();
        let p = PointSet::from_col_major(3, data);
        let mut norms = vec![0.0; p.len()];
        p.sq_norms_into(&mut norms);
        let mut out = kfds_la::Mat::zeros(16, 16);
        dist_tile_ranges(&p, &norms, 0..16, 0..16, out.rb_mut());
        for v in out.as_slice() {
            assert_eq!(*v, 0.0);
        }
    }

    #[test]
    fn sym_tile_matches_scalar_distances_with_exact_diagonal() {
        let p = pts(30, 6, 21);
        let mut norms = vec![0.0; p.len()];
        p.sq_norms_into(&mut norms);
        let ids: Vec<u32> = vec![4, 28, 0, 13, 13, 7];
        let mut out = kfds_la::Mat::zeros(ids.len(), ids.len());
        dist_tile_sym(&p, &norms, &ids, out.rb_mut());
        for (i, &a) in ids.iter().enumerate() {
            for (j, &b) in ids.iter().enumerate() {
                let want = sq_dist(p.point(a as usize), p.point(b as usize));
                let got = out[(i, j)];
                assert!((got - want).abs() <= 1e-12 * (1.0 + want), "({i},{j}): {got} vs {want}");
            }
            assert_eq!(out[(i, i)], 0.0);
        }
    }

    #[test]
    fn dist_row_matches_scalar_distances() {
        let p = pts(25, 9, 13);
        let mut norms = vec![0.0; p.len()];
        p.sq_norms_into(&mut norms);
        let cands: Vec<u32> = vec![0, 7, 24, 7, 12];
        let mut row = vec![0.0; cands.len()];
        dist_row(&p, &norms, 4, &cands, &mut row);
        for (j, &c) in cands.iter().enumerate() {
            let want = sq_dist(p.point(4), p.point(c as usize));
            assert!((row[j] - want).abs() <= 1e-12 * (1.0 + want));
        }
    }

    #[test]
    fn empty_tiles_are_noops() {
        let p = pts(10, 3, 2);
        let mut norms = vec![0.0; p.len()];
        p.sq_norms_into(&mut norms);
        let mut out = kfds_la::Mat::zeros(0, 5);
        dist_tile_ranges(&p, &norms, 4..4, 0..5, out.rb_mut());
        let mut out2 = kfds_la::Mat::zeros(3, 0);
        dist_tile_gather(&p, &norms, 0..3, &[], out2.rb_mut());
    }
}
