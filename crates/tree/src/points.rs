//! Point sets: the `d x N` coordinate matrix `X` of the paper.

use kfds_la::blas1::dot;

/// A set of `n` points in `d` dimensions, stored column-major (`d x n`):
/// point `i` is the contiguous slice `data[i*d .. (i+1)*d]`.
///
/// This is the layout the fused kernel summation wants — a kernel block
/// evaluation streams whole points.
#[derive(Clone, Debug, PartialEq)]
pub struct PointSet {
    dim: usize,
    data: Vec<f64>,
}

impl PointSet {
    /// Creates a point set from column-major coordinates.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_col_major(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        PointSet { dim, data }
    }

    /// An empty set with capacity for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0);
        PointSet { dim, data: Vec::with_capacity(dim * n) }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` if there are no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable coordinates of point `i`.
    #[inline]
    pub fn point_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Raw column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Appends a point.
    ///
    /// # Panics
    /// Panics if `p.len() != dim`.
    pub fn push(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dim);
        self.data.extend_from_slice(p);
    }

    /// Squared Euclidean distance between points `i` and `j`.
    #[inline]
    pub fn sq_dist(&self, i: usize, j: usize) -> f64 {
        sq_dist(self.point(i), self.point(j))
    }

    /// Squared Euclidean norms of every point (`‖x_i‖²`), used to turn
    /// pairwise distances into a GEMM (`‖x−y‖² = ‖x‖²+‖y‖²−2xᵀy`).
    pub fn sq_norms(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        self.sq_norms_into(&mut out);
        out
    }

    /// Fills `out[i] = ‖x_i‖²` without allocating — the pooled-buffer
    /// variant of [`PointSet::sq_norms`] used by the blocked distance
    /// tiles (`crate::dist_tiles`).
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn sq_norms_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.len(), "sq_norms_into: length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot(self.point(i), self.point(i));
        }
    }

    /// A new point set containing `idx`-selected points (with repetition
    /// allowed).
    pub fn select(&self, idx: &[usize]) -> PointSet {
        let mut out = PointSet::with_capacity(self.dim, idx.len());
        for &i in idx {
            out.push(self.point(i));
        }
        out
    }

    /// Reorders points so that new position `k` holds old point `perm[k]`.
    ///
    /// # Panics
    /// Panics if `perm.len() != self.len()`.
    pub fn permute(&self, perm: &[usize]) -> PointSet {
        assert_eq!(perm.len(), self.len(), "permutation length mismatch");
        self.select(perm)
    }

    /// Normalizes every coordinate to zero mean and unit variance in place
    /// (the preprocessing used for all datasets in the paper's Table II).
    /// Coordinates with zero variance are left centered.
    pub fn normalize(&mut self) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let d = self.dim;
        let mut mean = vec![0.0; d];
        for i in 0..n {
            for (m, &v) in mean.iter_mut().zip(self.point(i)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; d];
        for i in 0..n {
            for k in 0..d {
                let c = self.data[i * d + k] - mean[k];
                var[k] += c * c;
            }
        }
        let inv_std: Vec<f64> = var
            .iter()
            .map(|&v| {
                let s = (v / n as f64).sqrt();
                if s > 0.0 {
                    1.0 / s
                } else {
                    1.0
                }
            })
            .collect();
        for i in 0..n {
            for k in 0..d {
                self.data[i * d + k] = (self.data[i * d + k] - mean[k]) * inv_std[k];
            }
        }
    }

    /// The coordinate-wise mean of the points in `range`.
    pub fn centroid(&self, range: std::ops::Range<usize>) -> Vec<f64> {
        let mut c = vec![0.0; self.dim];
        let count = range.len().max(1) as f64;
        for i in range {
            for (ck, &v) in c.iter_mut().zip(self.point(i)) {
                *ck += v;
            }
        }
        for ck in &mut c {
            *ck /= count;
        }
        c
    }
}

/// Squared Euclidean distance between two coordinate slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dxy = x - y;
        s += dxy * dxy;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps() -> PointSet {
        // 3 points in 2-D: (0,0), (3,4), (1,1).
        PointSet::from_col_major(2, vec![0.0, 0.0, 3.0, 4.0, 1.0, 1.0])
    }

    #[test]
    fn accessors() {
        let p = ps();
        assert_eq!(p.len(), 3);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn distances() {
        let p = ps();
        assert_eq!(p.sq_dist(0, 1), 25.0);
        assert_eq!(p.sq_dist(0, 0), 0.0);
        assert_eq!(p.sq_dist(2, 0), 2.0);
    }

    #[test]
    fn sq_norms_match_self_distance_to_origin() {
        let p = ps();
        assert_eq!(p.sq_norms(), vec![0.0, 25.0, 2.0]);
    }

    #[test]
    fn select_and_permute() {
        let p = ps();
        let s = p.select(&[2, 2, 0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.point(0), &[1.0, 1.0]);
        assert_eq!(s.point(2), &[0.0, 0.0]);
        let q = p.permute(&[1, 2, 0]);
        assert_eq!(q.point(0), p.point(1));
    }

    #[test]
    fn normalize_zero_mean_unit_var() {
        let mut p = PointSet::from_col_major(1, vec![1.0, 2.0, 3.0, 4.0]);
        p.normalize();
        let mean: f64 = (0..4).map(|i| p.point(i)[0]).sum::<f64>() / 4.0;
        let var: f64 = (0..4).map(|i| p.point(i)[0].powi(2)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_constant_coordinate() {
        let mut p = PointSet::from_col_major(2, vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0]);
        p.normalize();
        for i in 0..3 {
            assert_eq!(p.point(i)[0], 0.0);
        }
    }

    #[test]
    fn centroid() {
        let p = ps();
        let c = p.centroid(0..3);
        assert!((c[0] - 4.0 / 3.0).abs() < 1e-12);
        assert!((c[1] - 5.0 / 3.0).abs() < 1e-12);
    }
}
