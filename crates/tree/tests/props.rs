//! Property-based tests for the geometric substrate.

use kfds_tree::datasets::normal_embedded;
use kfds_tree::{
    knn_all, knn_approximate, knn_brute_force, knn_recall, set_knn_blocked, BallTree, PointSet,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the global `KFDS_KNN` runtime override so a
/// concurrent test never observes a half-flipped A/B comparison.
static SWITCH_LOCK: Mutex<()> = Mutex::new(());

fn points_strategy(min_n: usize, max_n: usize, max_d: usize) -> impl Strategy<Value = PointSet> {
    (min_n..=max_n, 1..=max_d).prop_flat_map(|(n, d)| {
        proptest::collection::vec(-5.0f64..5.0, n * d)
            .prop_map(move |data| PointSet::from_col_major(d, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_structural_invariants(pts in points_strategy(2, 120, 6), m in 1usize..20) {
        let t = BallTree::build(&pts, m);
        let n = pts.len();
        // Permutation is a bijection and points match.
        let mut seen = vec![false; n];
        for (k, &o) in t.perm().iter().enumerate() {
            prop_assert!(!seen[o]);
            seen[o] = true;
            prop_assert_eq!(t.points().point(k), pts.point(o));
        }
        // Children partition their parent contiguously; leaves respect m.
        for (i, nd) in t.nodes().iter().enumerate() {
            prop_assert!(!nd.is_empty());
            match nd.children {
                Some((l, r)) => {
                    prop_assert_eq!(t.node(l).begin, nd.begin);
                    prop_assert_eq!(t.node(l).end, t.node(r).begin);
                    prop_assert_eq!(t.node(r).end, nd.end);
                    prop_assert_eq!(t.node(l).parent, Some(i));
                    prop_assert_eq!(t.node(r).sibling, Some(l));
                }
                None => prop_assert!(nd.len() <= m),
            }
        }
    }

    #[test]
    fn balls_cover_points(pts in points_strategy(4, 80, 4), m in 2usize..12) {
        let t = BallTree::build(&pts, m);
        for nd in t.nodes() {
            for k in nd.range() {
                let d = kfds_tree::sq_dist(t.points().point(k), &nd.center).sqrt();
                prop_assert!(d <= nd.radius + 1e-9);
            }
        }
    }

    #[test]
    fn knn_exactness(pts in points_strategy(10, 60, 4), k in 1usize..6) {
        prop_assume!(k < pts.len());
        let t = BallTree::build(&pts, 6);
        let fast = knn_all(&t, k);
        let slow = knn_brute_force(&t, k);
        for i in 0..pts.len() {
            for j in 0..k {
                let df = fast.distances(i)[j];
                let ds = slow.distances(i)[j];
                prop_assert!((df - ds).abs() < 1e-10, "point {i} rank {j}");
            }
        }
    }

    #[test]
    fn scalar_switch_reproduces_blocked_output_bitwise(
        pts in points_strategy(10, 80, 5),
        k in 1usize..6,
    ) {
        prop_assume!(k < pts.len());
        let _guard = SWITCH_LOCK.lock().unwrap();
        let t = BallTree::build(&pts, 6);
        set_knn_blocked(true);
        let blocked_exact = knn_all(&t, k);
        let blocked_approx = knn_approximate(&t, k, 3, 9);
        set_knn_blocked(false);
        let scalar_exact = knn_all(&t, k);
        let scalar_approx = knn_approximate(&t, k, 3, 9);
        set_knn_blocked(true);
        // Both paths finalize with the same exact-recompute + (dist, idx)
        // sort, so agreement must be bitwise, not merely within tolerance.
        for i in 0..pts.len() {
            prop_assert_eq!(blocked_exact.neighbors(i), scalar_exact.neighbors(i), "exact idx {i}");
            prop_assert_eq!(blocked_approx.neighbors(i), scalar_approx.neighbors(i), "approx idx {i}");
            for j in 0..k {
                prop_assert_eq!(
                    blocked_exact.distances(i)[j].to_bits(),
                    scalar_exact.distances(i)[j].to_bits(),
                    "exact dist {i} rank {j}"
                );
                prop_assert_eq!(
                    blocked_approx.distances(i)[j].to_bits(),
                    scalar_approx.distances(i)[j].to_bits(),
                    "approx dist {i} rank {j}"
                );
            }
        }
    }

    #[test]
    fn projection_tree_recall_bound(seed in 0u64..1000) {
        // Low intrinsic dimension embedded in a higher ambient one: the
        // regime `harness_skel_config` routes to the approximate path. A
        // handful of randomized projection trees must recover most true
        // neighbors regardless of the RNG stream.
        let p = normal_embedded(300, 3, 16, 0.05, seed.wrapping_mul(0x9e3779b9).wrapping_add(1));
        let t = BallTree::build(&p, 16);
        let exact = knn_all(&t, 8);
        let approx = knn_approximate(&t, 8, 6, seed);
        let recall = knn_recall(&exact, &approx);
        prop_assert!(recall > 0.55, "seed {seed}: recall {recall}");
    }

    #[test]
    fn normalization_idempotent_statistics(pts in points_strategy(8, 60, 4)) {
        let mut p = pts;
        p.normalize();
        let n = p.len() as f64;
        for c in 0..p.dim() {
            let mean: f64 = (0..p.len()).map(|i| p.point(i)[c]).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-9);
            let var: f64 = (0..p.len()).map(|i| p.point(i)[c].powi(2)).sum::<f64>() / n;
            // Either unit variance or a degenerate (constant) coordinate.
            prop_assert!((var - 1.0).abs() < 1e-7 || var < 1e-12);
        }
    }
}
