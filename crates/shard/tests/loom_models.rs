//! Loom model tests for the shard tier's concurrent core (extending the
//! `crates/serve/tests/loom_models.rs` patterns): router shutdown never
//! loses a ticket, and a p-shard scatter/gather completes exactly once
//! per request.
//!
//! Under the offline `shims/loom` stand-in, `model` runs each body
//! `LOOM_ITERS` times (default 64) with deterministically staggered
//! thread startup — a bounded stress search. The (expensive) fixture
//! factorization is built once outside the model and shared through the
//! O(1)-clone [`SharedFactor`] handle, so each iteration only exercises
//! the router's concurrency, not the numerics.

use kfds_askit::{skeletonize, SkelConfig};
use kfds_core::{SharedFactor, SolverConfig, StorageMode};
use kfds_kernels::Gaussian;
use kfds_la::Mat;
use kfds_shard::{ShardError, ShardRouter};
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use loom::thread;
use std::sync::Arc;

const P: usize = 2;
const NRHS: usize = 2;

fn fixture() -> (SharedFactor<Gaussian>, Mat, Mat) {
    let n = 128;
    let pts = normal_embedded(n, 3, 4, 0.05, 37);
    let kernel = Gaussian::new(1.0);
    let tree = BallTree::build(&pts, 32);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-4).with_max_rank(24).with_neighbors(6).with_max_level(1),
    );
    let sf = SharedFactor::factorize(
        Arc::new(st),
        Arc::new(kernel),
        SolverConfig::default().with_lambda(1.0).with_storage(StorageMode::StoredGemv),
    )
    .expect("fixture factorization");
    let mut rhs = Mat::zeros(n, NRHS);
    for j in 0..NRHS {
        for (i, v) in rhs.col_mut(j).iter_mut().enumerate() {
            *v = ((i * (j + 2) + 5) % 23) as f64 / 23.0 - 0.5;
        }
    }
    let mut expect = rhs.clone();
    sf.factor_tree().solve_mat_in_place(&mut expect).expect("reference solve");
    (sf, rhs, expect)
}

#[test]
fn router_shutdown_never_loses_a_ticket() {
    // Concurrent solves race shutdown: each call must return either the
    // full (bitwise-correct) answer or ShuttingDown — never hang (the
    // model run itself asserts that: a lost scatter/gather leg deadlocks
    // the joins) and never a torn half-solve.
    let (sf, rhs, expect) = fixture();
    let sf = Arc::new(sf);
    let rhs = Arc::new(rhs);
    let expect = Arc::new(expect);
    loom::model(move || {
        let router: Arc<ShardRouter<u64, Gaussian>> = Arc::new(ShardRouter::start(P, 2));
        let solvers: Vec<_> = (0..2u64)
            .map(|key| {
                let router = Arc::clone(&router);
                let sf = Arc::clone(&sf);
                let rhs = Arc::clone(&rhs);
                let expect = Arc::clone(&expect);
                thread::spawn(move || {
                    let mut b = (*rhs).clone();
                    match router.solve(&key, &sf, &mut b) {
                        Ok(()) => {
                            for j in 0..NRHS {
                                assert_eq!(
                                    b.col(j),
                                    expect.col(j),
                                    "a solve that won the race must be exact"
                                );
                            }
                        }
                        Err(ShardError::ShuttingDown) => {}
                        Err(other) => panic!("impossible outcome: {other}"),
                    }
                })
            })
            .collect();
        let shutter = {
            let router = Arc::clone(&router);
            thread::spawn(move || router.shutdown())
        };
        for h in solvers {
            h.join().expect("solver thread");
        }
        shutter.join().expect("shutdown thread");
        // Idempotent after the race, and firmly closed.
        router.shutdown();
        let mut b = (*rhs).clone();
        assert!(matches!(router.solve(&9, &sf, &mut b), Err(ShardError::ShuttingDown)));
    });
}

#[test]
fn scatter_gather_completes_exactly_once_per_request() {
    // Concurrent same-key solves: every request must run the
    // scatter/gather protocol exactly once per shard (the router-side
    // gather counts exactly p legs; the outcome record's swap assert
    // fires on any double completion), the partition must build once for
    // the group, and each shard's local cache must miss exactly once.
    let (sf, rhs, expect) = fixture();
    let sf = Arc::new(sf);
    let rhs = Arc::new(rhs);
    let expect = Arc::new(expect);
    loom::model(move || {
        let router: Arc<ShardRouter<u64, Gaussian>> = Arc::new(ShardRouter::start(P, 2));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let router = Arc::clone(&router);
                let sf = Arc::clone(&sf);
                let rhs = Arc::clone(&rhs);
                let expect = Arc::clone(&expect);
                thread::spawn(move || {
                    let mut b = (*rhs).clone();
                    router.solve(&1u64, &sf, &mut b).expect("routed solve");
                    for j in 0..NRHS {
                        assert_eq!(b.col(j), expect.col(j));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("solver thread");
        }
        assert_eq!(router.owner_builds(), 1, "one partition build per shard group");
        for lane in router.stats() {
            assert_eq!(lane.requests, 3, "every request reaches every shard exactly once");
            assert_eq!(lane.local_misses, 1, "each shard fills its local cache once");
            assert_eq!(lane.local_hits, 2);
            assert_eq!(lane.errors, 0);
            assert_eq!(lane.rows_solved, 3 * (128 / P as u64) * NRHS as u64);
        }
        router.shutdown();
    });
}

#[test]
fn rank_inversion_is_caught_by_the_runtime_checker() {
    // Seeded lock-order inversion: the debug-build held-rank stack in
    // `kfds_rt::sync` must panic ("lock-rank inversion") on the thread
    // that acquires against the hierarchy, under concurrency — the
    // runtime backstop behind the static `rule_lock_discipline` lint. In
    // release builds the checker compiles out and the nesting is merely
    // a (deadlock-free, single-threaded here) pair of acquisitions.
    use kfds_rt::sync::{LockRank, RankedMutex};
    loom::model(|| {
        let hi = Arc::new(RankedMutex::new(LockRank::ShardPartitionCache, ()));
        let lo = Arc::new(RankedMutex::new(LockRank::RouterDataPlane, ()));
        let h = {
            let hi = Arc::clone(&hi);
            let lo = Arc::clone(&lo);
            thread::spawn(move || {
                let _outer = hi.lock();
                let _inner = lo.lock(); // ShardPartitionCache > RouterDataPlane: inversion
            })
        };
        let res = h.join();
        if cfg!(debug_assertions) {
            assert!(res.is_err(), "rank inversion must panic the acquiring thread in debug");
        } else {
            assert!(res.is_ok(), "release builds compile the checker out");
        }
        // The hierarchy-respecting direction must stay clean either way.
        let _a = lo.lock();
        let _b = hi.lock();
    });
}
