//! Routed (scatter/gather) sharded solves must be bitwise-identical to
//! the single-node blocked solve, for p ∈ {1, 2, 4}, across λ and RHS
//! widths — the end-to-end form of `kfds-core`'s partition property,
//! with the answer actually traveling the transport.

use kfds_askit::{skeletonize, SkelConfig};
use kfds_core::{SharedFactor, SolverConfig, StorageMode};
use kfds_kernels::Gaussian;
use kfds_la::Mat;
use kfds_shard::{ShardError, ShardRouter};
use kfds_tree::datasets::normal_embedded;
use kfds_tree::BallTree;
use proptest::prelude::*;
use std::sync::Arc;

fn shared_factor(lambda: f64) -> SharedFactor<Gaussian> {
    let n = 512;
    let pts = normal_embedded(n, 3, 6, 0.05, 31);
    let kernel = Gaussian::new(1.0);
    let tree = BallTree::build(&pts, 64);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(48).with_neighbors(8).with_max_level(1),
    );
    SharedFactor::factorize(
        Arc::new(st),
        Arc::new(kernel),
        SolverConfig::default().with_lambda(lambda).with_storage(StorageMode::StoredGemv),
    )
    .expect("fixture factorization")
}

fn rhs_matrix(n: usize, nrhs: usize, salt: usize) -> Mat {
    let mut b = Mat::zeros(n, nrhs);
    for j in 0..nrhs {
        for (i, v) in b.col_mut(j).iter_mut().enumerate() {
            *v = ((i * (j + 5) + 13 * salt + 3) % 41) as f64 / 41.0 - 0.5;
        }
    }
    b
}

#[test]
fn routed_solve_is_bitwise_identical_for_p_1_2_4() {
    let sf = shared_factor(0.5);
    for p in [1usize, 2, 4] {
        let router: ShardRouter<String, Gaussian> = ShardRouter::start(p, 4);
        for (salt, nrhs) in [(0usize, 1usize), (1, 4), (2, 7)] {
            let mut routed = rhs_matrix(sf.n(), nrhs, salt);
            let mut single = routed.clone();
            router.solve(&"k".to_string(), &sf, &mut routed).expect("routed solve");
            sf.factor_tree().solve_mat_in_place(&mut single).expect("single-node solve");
            for j in 0..nrhs {
                assert_eq!(
                    routed.col(j),
                    single.col(j),
                    "p={p} nrhs={nrhs}: routed and single-node answers diverge in column {j}"
                );
            }
        }
        // One partition build serves every request; each shard missed its
        // local cache exactly once and erred never.
        assert_eq!(router.owner_builds(), 1);
        for lane in router.stats() {
            assert_eq!(lane.requests, 3);
            assert_eq!(lane.local_misses, 1);
            assert_eq!(lane.local_hits, 2);
            assert_eq!(lane.errors, 0);
        }
        router.shutdown();
        assert!(matches!(
            router.solve(&"k".to_string(), &sf, &mut rhs_matrix(sf.n(), 1, 0)),
            Err(ShardError::ShuttingDown)
        ));
    }
}

#[test]
fn unpartitionable_factor_is_reported_not_dispatched() {
    let sf = shared_factor(0.5);
    // 512 points with 64-point leaves: depth 3, so 16 shards have no cut.
    let router: ShardRouter<String, Gaussian> = ShardRouter::start(16, 4);
    let mut b = rhs_matrix(sf.n(), 2, 0);
    let before = b.clone();
    match router.solve(&"deep".to_string(), &sf, &mut b) {
        Err(ShardError::Unpartitionable(_)) => {}
        other => panic!("expected Unpartitionable, got {other:?}"),
    }
    for j in 0..b.ncols() {
        assert_eq!(b.col(j), before.col(j), "a refused solve must leave the rhs untouched");
    }
    for lane in router.stats() {
        assert_eq!(lane.requests, 0, "no work may reach the shards");
    }
    router.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The acceptance property, through the router: bitwise equality
    // across shard count, λ and RHS width.
    #[test]
    fn routed_solve_bitwise_property(
        lambda_ix in 0usize..3,
        nrhs in 1usize..5,
        p_log in 0usize..3,
    ) {
        let lambda = [0.25, 1.0, 4.0][lambda_ix];
        let sf = shared_factor(lambda);
        let p = 1 << p_log;
        let router: ShardRouter<u64, Gaussian> = ShardRouter::start(p, 2);
        let mut routed = rhs_matrix(sf.n(), nrhs, p_log);
        let mut single = routed.clone();
        router.solve(&7u64, &sf, &mut routed).expect("routed solve");
        sf.factor_tree().solve_mat_in_place(&mut single).expect("single-node solve");
        for j in 0..nrhs {
            prop_assert_eq!(routed.col(j), single.col(j));
        }
        router.shutdown();
    }
}
