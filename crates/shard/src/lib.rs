//! # kfds-shard — sharded serve tier for the fast direct solver
//!
//! The paper's distributed Algorithms II.4/II.5 assign each rank a
//! subtree of the hierarchical factorization; this crate brings that
//! ownership shape to the serving layer. A [`ShardRouter`] fronts `p`
//! shard worker threads: each worker owns one rank-owned subtree of a
//! [`kfds_core::PartitionedFactor`] (the tree cut at level `log2 p`),
//! solves its contiguous RHS row block with the exact single-node
//! recursion, and the router stitches the partial solves together
//! through the shared top tree — so the sharded answer is bitwise
//! identical to the unsharded blocked solve.
//!
//! RHS blocks move over [`kfds_rt::Transport`] (the in-process channel
//! [`kfds_rt::Comm`] today; a wire backend later), and caching is a
//! three-level hierarchy built from one generic
//! [`SingleFlightCache`]: `kfds-serve`'s λ-free setup cache (built once
//! per shard group) → the router's shard-group partition cache (one
//! [`kfds_core::PartitionedFactor`] per factor key) → each worker's
//! local cache, filled by [`SingleFlightCache::peek`] (workers never
//! build).
//!
//! `kfds-serve` mounts this behind the `KFDS_SHARD` registry switch:
//! `sharded(p)` services route complete factorizations through the
//! router and fall back to the single-node path (bitwise the same)
//! when a factor cannot shard or the switch is off.

#![forbid(unsafe_code)]

pub mod cache;
pub mod router;
pub mod stats;

pub use cache::{CacheError, SingleFlightCache};
pub use kfds_rt::sync::LockRank;
pub use router::{ShardError, ShardRouter};
pub use stats::ShardLane;
