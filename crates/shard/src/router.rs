//! The shard router: owner-cache resolution, RHS-block scatter, partial
//! solve gather, and the shared top-tree sweep.
//!
//! Topology: `p` shard worker threads hold transport ranks `0..p`, the
//! router holds rank `p`. A solve is a control-plane job broadcast (key +
//! RHS width + a shared outcome record, over crossbeam channels) followed
//! by the data-plane exchange over [`kfds_rt::Transport`]: the router
//! scatters each shard's contiguous RHS row block under
//! [`tags::SHARD_DATA`], every worker solves its rank-owned subtree
//! locally and sends the solved block back, and the router finishes the
//! gathered vector with [`PartitionedFactor::solve_top`] — the shared
//! top-tree corrections. The data plane is serialized under one mutex, so
//! a request's scatter/gather pair can never interleave with another's
//! and tag reuse across requests is safe; workers drain their channel in
//! order, matching the transport's per-pair FIFO guarantee.
//!
//! A failed worker (missing partition, malformed payload, panicking
//! solve) still sends an (empty, hence malformed) gather block so the
//! router always receives exactly `p` responses and the data plane stays
//! clean; the failure itself travels through the outcome record.

use crate::cache::SingleFlightCache;
use crate::stats::{ShardCounters, ShardLane};
use crossbeam::channel::{unbounded, Receiver, Sender};
use kfds_core::{PartitionedFactor, SharedFactor};
use kfds_kernels::Kernel;
use kfds_la::Mat;
use kfds_rt::sync::{LockRank, RankedMutex};
use kfds_rt::{tags, Comm, Transport, World};
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// RHS row-block scatter, router → shard worker.
const SCATTER: u32 = tags::SHARD_DATA.tag(0);
/// Solved row-block gather, shard worker → router.
const GATHER: u32 = tags::SHARD_DATA.tag(1);

/// Why a routed solve failed.
#[derive(Clone, Debug)]
pub enum ShardError {
    /// The router is shut down (or shutting down); no work was dispatched.
    ShuttingDown,
    /// The factorization cannot be split into this router's shard count
    /// (or its partition record is quarantined). The caller should serve
    /// the request on the single-node path instead — the answer is
    /// bitwise the same.
    Unpartitionable(String),
    /// A shard worker failed its local solve; the RHS buffer contents are
    /// unspecified and the request must be reported failed.
    ShardFailed {
        /// First failing shard.
        shard: usize,
        /// The failure it reported.
        msg: String,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ShuttingDown => write!(f, "shard router is shutting down"),
            ShardError::Unpartitionable(e) => write!(f, "factor cannot be sharded: {e}"),
            ShardError::ShardFailed { shard, msg } => {
                write!(f, "shard {shard} failed its local solve: {msg}")
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Per-request completion record shared between the router and the `p`
/// workers: every shard must report exactly once (enforced by a
/// debug-mode swap assert — the scatter/gather protocol's exactly-once
/// property), and errors travel back by shard index.
struct RequestOutcome {
    /// 0 = pending, 1 = ok, 2 = failed; one slot per shard.
    marks: Vec<AtomicU8>,
    errs: RankedMutex<Vec<Option<String>>>,
}

impl RequestOutcome {
    fn new(p: usize) -> Self {
        RequestOutcome {
            marks: (0..p).map(|_| AtomicU8::new(0)).collect(),
            errs: RankedMutex::new(LockRank::ShardOutcome, vec![None; p]),
        }
    }

    fn record(&self, shard: usize, err: Option<String>) {
        let code = if err.is_some() { 2 } else { 1 };
        let prev = self.marks[shard].swap(code, Ordering::SeqCst);
        debug_assert_eq!(prev, 0, "shard {shard} completed the same request twice");
        if let Some(msg) = err {
            self.errs.lock()[shard] = Some(msg);
        }
    }

    fn assert_all_reported(&self) {
        for (s, m) in self.marks.iter().enumerate() {
            debug_assert_ne!(
                m.load(Ordering::SeqCst),
                0,
                "shard {s} never reported completion for a gathered request"
            );
        }
    }

    fn error_of(&self, shard: usize) -> String {
        self.errs.lock()[shard].clone().unwrap_or_else(|| "shard solve failed".into())
    }
}

/// Control-plane message to one shard worker.
enum Job<Key> {
    Solve { key: Key, nrhs: usize, outcome: Arc<RequestOutcome> },
    Shutdown,
}

/// The router's half of the data plane, serialized under one mutex so
/// concurrent solves cannot interleave their scatter/gather exchanges.
struct DataPlane {
    ep: Comm,
    closed: bool,
}

/// Routes keyed solve requests across `p` shard workers.
///
/// Caching is two-level within the shard group: the router owns the
/// *group* cache (one [`PartitionedFactor`] per key, built single-flight
/// under the data-plane lock), and each worker keeps a *local* cache in
/// front of it, filled by [`SingleFlightCache::peek`]ing the group owner
/// — workers never build. Stacked under `kfds-serve`'s setup cache this
/// gives the three-level hierarchy: setup (λ-free, once per shard group)
/// → group partition (per key) → shard-local handle.
pub struct ShardRouter<Key, K>
where
    Key: Clone + Eq + Hash + Send + Sync + 'static,
    K: Kernel + 'static,
{
    p: usize,
    owner: Arc<SingleFlightCache<Key, PartitionedFactor<K>>>,
    plane: RankedMutex<DataPlane>,
    job_txs: Vec<Sender<Job<Key>>>,
    workers: RankedMutex<Vec<JoinHandle<()>>>,
    counters: Arc<Vec<ShardCounters>>,
}

impl<Key, K> ShardRouter<Key, K>
where
    Key: Clone + Eq + Hash + Send + Sync + 'static,
    K: Kernel + 'static,
{
    /// Spawns `p` shard workers (transport ranks `0..p`; the router keeps
    /// rank `p`), each with a local partition cache of `cache_capacity`
    /// entries; the group-owner cache uses the same capacity.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn start(p: usize, cache_capacity: usize) -> Self {
        assert!(p > 0, "need at least one shard");
        let mut eps = World::endpoints(p + 1);
        // PANIC-OK: World::endpoints(p + 1) returns exactly p + 1
        // endpoints by contract and p >= 1 is asserted above.
        let router_ep = eps.pop().expect("p + 1 endpoints");
        let owner = Arc::new(SingleFlightCache::new(cache_capacity, LockRank::ShardPartitionCache));
        let counters: Arc<Vec<ShardCounters>> =
            Arc::new((0..p).map(|_| ShardCounters::default()).collect());
        let mut job_txs = Vec::with_capacity(p);
        let mut workers = Vec::with_capacity(p);
        for (shard, ep) in eps.into_iter().enumerate() {
            let (tx, rx) = unbounded();
            job_txs.push(tx);
            let owner = Arc::clone(&owner);
            let counters = Arc::clone(&counters);
            let local = SingleFlightCache::new(cache_capacity, LockRank::ShardPartitionCache);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kfds-shard-{shard}"))
                    .spawn(move || worker_loop(shard, p, ep, rx, local, owner, counters))
                    // PANIC-OK: thread-spawn failure at router startup is a
                    // resource-exhaustion fault on the control plane, not a
                    // per-request data-plane condition to degrade from.
                    .expect("spawn shard worker"),
            );
        }
        ShardRouter {
            p,
            owner,
            plane: RankedMutex::new(
                LockRank::RouterDataPlane,
                DataPlane { ep: router_ep, closed: false },
            ),
            job_txs,
            workers: RankedMutex::new(LockRank::RouterControl, workers),
            counters,
        }
    }

    /// Number of shards `p`.
    pub fn shards(&self) -> usize {
        self.p
    }

    /// Solves `(λI + K̃) X = B` in place across the shard group: resolves
    /// (or builds) the partition of `factor` under `key`, scatters RHS
    /// row blocks, gathers the per-shard partial solves and applies the
    /// shared top tree. Bitwise-identical to the single-node blocked
    /// solve on the same `b`.
    ///
    /// # Errors
    /// [`ShardError::ShuttingDown`] after [`shutdown`](Self::shutdown)
    /// (no work dispatched, `b` untouched);
    /// [`ShardError::Unpartitionable`] when `factor` cannot split into
    /// `p` shards (`b` untouched — serve the single-node path instead);
    /// [`ShardError::ShardFailed`] when a worker fails (`b`'s contents
    /// are unspecified).
    pub fn solve(
        &self,
        key: &Key,
        factor: &SharedFactor<K>,
        b: &mut Mat,
    ) -> Result<(), ShardError> {
        let plane = self.plane.lock();
        if plane.closed {
            return Err(ShardError::ShuttingDown);
        }
        let (pf, _hit) = self
            .owner
            .get_or_build(key, || {
                PartitionedFactor::partition(factor.clone(), self.p).map_err(|e| e.to_string())
            })
            .map_err(|e| ShardError::Unpartitionable(e.to_string()))?;
        assert_eq!(b.nrows(), pf.n(), "routed solve: rhs rows mismatch");
        let nrhs = b.ncols();
        if nrhs == 0 {
            return Ok(());
        }
        let outcome = Arc::new(RequestOutcome::new(self.p));
        for tx in &self.job_txs {
            let job = Job::Solve { key: key.clone(), nrhs, outcome: Arc::clone(&outcome) };
            // PANIC-OK: workers only exit after a Shutdown job, which is
            // only sent with `closed` set under this same lock — a
            // disconnected channel here means a worker died outside the
            // protocol (broken invariant), and the serve tier contains the
            // unwind via catch_unwind + key quarantine.
            tx.send(job).expect("shard worker alive while the router is open");
        }
        pf.scatter_rhs(&plane.ep, b, SCATTER);
        let malformed = pf.gather_solutions(&plane.ep, b, GATHER);
        drop(plane);
        outcome.assert_all_reported();
        if let Some(&shard) = malformed.first() {
            return Err(ShardError::ShardFailed { shard, msg: outcome.error_of(shard) });
        }
        pf.solve_top(b);
        Ok(())
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn stats(&self) -> Vec<ShardLane> {
        self.counters.iter().enumerate().map(|(s, c)| c.snapshot(s)).collect()
    }

    /// Partitions built by the shard-group owner cache.
    pub fn owner_builds(&self) -> u64 {
        self.owner.builds()
    }

    /// Partitions resident in the shard-group owner cache.
    pub fn owner_ready_len(&self) -> usize {
        self.owner.ready_len()
    }

    /// Stops the workers and joins them. Idempotent; in-flight solves
    /// complete first (they hold the data-plane lock), later `solve`
    /// calls return [`ShardError::ShuttingDown`].
    pub fn shutdown(&self) {
        {
            let mut plane = self.plane.lock();
            if plane.closed {
                return;
            }
            plane.closed = true;
            for tx in &self.job_txs {
                // A worker that already panicked has dropped its receiver;
                // the join below still reaps it.
                let _ = tx.send(Job::Shutdown);
            }
        }
        let mut workers = self.workers.lock();
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl<Key, K> Drop for ShardRouter<Key, K>
where
    Key: Clone + Eq + Hash + Send + Sync + 'static,
    K: Kernel + 'static,
{
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<Key, K>(
    shard: usize,
    p: usize,
    ep: Comm,
    rx: Receiver<Job<Key>>,
    local: SingleFlightCache<Key, PartitionedFactor<K>>,
    owner: Arc<SingleFlightCache<Key, PartitionedFactor<K>>>,
    counters: Arc<Vec<ShardCounters>>,
) where
    Key: Clone + Eq + Hash + Send + Sync + 'static,
    K: Kernel + 'static,
{
    let me = &counters[shard];
    while let Ok(job) = rx.recv() {
        let Job::Solve { key, nrhs, outcome } = job else {
            break;
        };
        ShardCounters::bump(&me.requests);
        // The router scatters unconditionally after broadcasting the job,
        // so the payload must be consumed even on the failure paths below
        // — otherwise it would linger and corrupt the next request.
        let payload = ep.recv_block(p, SCATTER);
        let result: Result<Mat, String> = match local.get_or_build(&key, || {
            owner
                .peek(&key)
                .ok_or("partition not resident in the shard-group owner cache".to_string())
        }) {
            Err(e) => Err(e.to_string()),
            Ok((pf, hit)) => {
                ShardCounters::bump(if hit { &me.local_hits } else { &me.local_misses });
                match pf.block_from_payload(shard, nrhs, &payload) {
                    None => Err(format!(
                        "scatter payload shape mismatch on shard {shard}: got {} values for \
                         {} x {nrhs}",
                        payload.len(),
                        pf.shard_range(shard).len()
                    )),
                    Some(mut block) => catch_unwind(AssertUnwindSafe(|| {
                        pf.solve_local(shard, &mut block);
                        block
                    }))
                    .map_err(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "local solve panicked".to_string());
                        format!("local solve panicked on shard {shard}: {msg}")
                    }),
                }
            }
        };
        match result {
            Ok(block) => {
                me.rows_solved.fetch_add((block.nrows() * block.ncols()) as u64, Ordering::Relaxed);
                outcome.record(shard, None);
                ep.send_block(p, GATHER, &PartitionedFactor::<K>::pack_block(&block));
            }
            Err(msg) => {
                ShardCounters::bump(&me.errors);
                outcome.record(shard, Some(msg));
                // An empty block is always malformed for nrhs >= 1, so the
                // router sees exactly which shard failed while its gather
                // count stays exact.
                ep.send_block(p, GATHER, &[]);
            }
        }
    }
}
