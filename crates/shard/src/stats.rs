//! Per-shard counters for the sharded serve tier.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live per-shard counters, updated by the shard's worker thread with
/// relaxed atomics (monotonic event counts; no cross-counter ordering is
/// implied or needed).
#[derive(Default)]
pub(crate) struct ShardCounters {
    pub requests: AtomicU64,
    pub local_hits: AtomicU64,
    pub local_misses: AtomicU64,
    pub rows_solved: AtomicU64,
    pub errors: AtomicU64,
}

impl ShardCounters {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self, shard: usize) -> ShardLane {
        ShardLane {
            shard,
            requests: self.requests.load(Ordering::Relaxed),
            local_hits: self.local_hits.load(Ordering::Relaxed),
            local_misses: self.local_misses.load(Ordering::Relaxed),
            rows_solved: self.rows_solved.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time counters of one shard lane, as surfaced through
/// `ServeStats` and the smoke lane's JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardLane {
    /// Shard index (also the transport rank of its worker).
    pub shard: usize,
    /// Scatter/gather requests this shard served (one per routed batch).
    pub requests: u64,
    /// Requests resolved from the shard-local partition cache.
    pub local_hits: u64,
    /// Requests that had to fetch the partition from the shard-group
    /// owner cache.
    pub local_misses: u64,
    /// Total RHS rows solved locally (`shard rows × nrhs`, summed).
    pub rows_solved: u64,
    /// Requests that failed on this shard (bad payload, missing
    /// partition, or a panicking local solve).
    pub errors: u64,
}

impl ShardLane {
    /// Renders the lane as a JSON object (the serve tier's hand-rolled
    /// stats JSON embeds it verbatim).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shard\": {}, \"requests\": {}, \"local_hits\": {}, \"local_misses\": {}, \
             \"rows_solved\": {}, \"errors\": {}}}",
            self.shard,
            self.requests,
            self.local_hits,
            self.local_misses,
            self.rows_solved,
            self.errors
        )
    }
}
