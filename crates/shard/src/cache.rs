//! Generic LRU + single-flight + quarantine cache.
//!
//! Grown out of `kfds-serve`'s factorization cache (PR 3) and generalized
//! over the key for the two-level setup/factor hierarchy (PR 7); it moved
//! here so the sharded tier can stack a third level on the same
//! machinery: each shard worker runs a *local* `SingleFlightCache` of
//! [`kfds_core::PartitionedFactor`] handles in front of the router-owned
//! shard-group cache, which it reads through [`peek`]
//! (SingleFlightCache::peek) — a lookup that never builds, because only
//! the router may install a partition for its shard group.
//!
//! **Single-flight:** concurrent `get_or_build` calls for the same key
//! block on one builder invocation instead of racing N builds; waiters
//! receive the built handle (counted as hits — they did not pay for the
//! build).
//!
//! **Quarantine:** a builder error (or panic) poisons the key. Subsequent
//! requests fail fast with [`CacheError::Poisoned`] without re-running
//! the builder, so one broken key cannot occupy the workers, and
//! unrelated keys are untouched.

use kfds_rt::sync::{LockRank, RankedCondvar, RankedMutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a cache lookup failed.
#[derive(Clone, Debug)]
pub enum CacheError {
    /// This call ran the builder and it failed.
    BuildFailed(String),
    /// The key is quarantined from an earlier failure; the builder was
    /// not re-run.
    Poisoned(String),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::BuildFailed(e) => write!(f, "factorization build failed: {e}"),
            CacheError::Poisoned(e) => write!(f, "factorization key quarantined: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

enum Slot<V> {
    /// A builder is running on some thread; waiters sleep on the condvar.
    Building,
    Ready {
        value: V,
        last_used: u64,
    },
    Poisoned(String),
}

struct CacheState<Key, V> {
    map: HashMap<Key, Slot<V>>,
    /// Monotonic recency clock for LRU.
    tick: u64,
}

/// LRU + single-flight + quarantine cache, generic over the key. The
/// serve tier instantiates it three ways: factor-level (λ included),
/// setup-level (λ-free), and per-shard partition-local. All levels share
/// this one implementation, so the single-flight and quarantine
/// semantics are identical.
pub struct SingleFlightCache<Key: Clone + Eq + std::hash::Hash, V: Clone> {
    capacity: usize,
    state: RankedMutex<CacheState<Key, V>>,
    cv: RankedCondvar,
    builds: AtomicU64,
}

impl<Key: Clone + Eq + std::hash::Hash, V: Clone> SingleFlightCache<Key, V> {
    /// Creates a cache retaining at most `capacity` ready factorizations
    /// (`capacity` is clamped to ≥ 1) whose state lock carries `rank` in
    /// the [`LockRank`] hierarchy — each instantiation level (factor,
    /// setup, shard partition) sits at its own rung. Poisoned keys are
    /// quarantine records, not cached values, and do not count against
    /// the capacity.
    pub fn new(capacity: usize, rank: LockRank) -> Self {
        SingleFlightCache {
            capacity: capacity.max(1),
            state: RankedMutex::new(rank, CacheState { map: HashMap::new(), tick: 0 }),
            cv: RankedCondvar::new(),
            builds: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, running `build` exactly once across all concurrent
    /// callers if absent. Returns the handle plus `true` when it was
    /// served without running the builder in this call (a hit — including
    /// single-flight waiters).
    ///
    /// # Errors
    /// [`CacheError::Poisoned`] for quarantined keys (fast-fail, builder
    /// not re-run); [`CacheError::BuildFailed`] when this call's build
    /// errored or panicked (the key becomes quarantined).
    pub fn get_or_build<E: std::fmt::Display>(
        &self,
        key: &Key,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), CacheError> {
        let mut st = self.state.lock();
        loop {
            // Bump the recency clock up front so the Ready arm can borrow
            // the slot mutably without a second lookup.
            st.tick += 1;
            let t = st.tick;
            match st.map.get_mut(key) {
                Some(Slot::Ready { value, last_used }) => {
                    *last_used = t;
                    return Ok((value.clone(), true));
                }
                Some(Slot::Poisoned(e)) => return Err(CacheError::Poisoned(e.clone())),
                Some(Slot::Building) => {
                    st = self.cv.wait(st);
                }
                None => break,
            }
        }
        // We are the builder for this key.
        st.map.insert(key.clone(), Slot::Building);
        drop(st);
        self.builds.fetch_add(1, Ordering::Relaxed);
        let built = catch_unwind(AssertUnwindSafe(build));
        let mut st = self.state.lock();
        let outcome = match built {
            Ok(Ok(v)) => {
                st.tick += 1;
                let t = st.tick;
                st.map.insert(key.clone(), Slot::Ready { value: v.clone(), last_used: t });
                self.evict_lru(&mut st);
                Ok((v, false))
            }
            Ok(Err(e)) => {
                let msg = e.to_string();
                st.map.insert(key.clone(), Slot::Poisoned(msg.clone()));
                Err(CacheError::BuildFailed(msg))
            }
            Err(panic) => {
                let msg = panic_message(panic.as_ref());
                st.map.insert(key.clone(), Slot::Poisoned(msg.clone()));
                Err(CacheError::BuildFailed(msg))
            }
        };
        drop(st);
        self.cv.notify_all();
        outcome
    }

    /// Read-only lookup: returns the ready value for `key` (bumping its
    /// recency) or `None`, never waiting on or running a builder. Shard
    /// workers use this against the router-owned group cache — only the
    /// router installs partitions, so a worker must not trigger (or block
    /// on) a build from the data-plane path.
    pub fn peek(&self, key: &Key) -> Option<V> {
        let mut st = self.state.lock();
        st.tick += 1;
        let t = st.tick;
        match st.map.get_mut(key) {
            Some(Slot::Ready { value, last_used }) => {
                *last_used = t;
                Some(value.clone())
            }
            _ => None,
        }
    }

    fn evict_lru(&self, st: &mut CacheState<Key, V>) {
        loop {
            let ready: Vec<(&Key, u64)> = st
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((k, *last_used)),
                    _ => None,
                })
                .collect();
            if ready.len() <= self.capacity {
                return;
            }
            // `ready` is nonempty here (len > capacity >= 1), but degrade
            // to a no-op rather than panic on the impossible branch.
            let Some(victim) = ready.iter().min_by_key(|(_, t)| *t).map(|(k, _)| (*k).clone())
            else {
                return;
            };
            st.map.remove(&victim);
        }
    }

    /// Quarantines `key` explicitly (e.g. after a solve panic), so later
    /// requests fail fast instead of re-dispatching onto a bad
    /// factorization.
    pub fn poison(&self, key: &Key, reason: impl Into<String>) {
        let mut st = self.state.lock();
        st.map.insert(key.clone(), Slot::Poisoned(reason.into()));
        drop(st);
        self.cv.notify_all();
    }

    /// Ready factorizations resident.
    pub fn ready_len(&self) -> usize {
        self.state.lock().map.values().filter(|s| matches!(s, Slot::Ready { .. })).count()
    }

    /// Quarantined keys.
    pub fn poisoned_len(&self) -> usize {
        self.state.lock().map.values().filter(|s| matches!(s, Slot::Poisoned(_))).count()
    }

    /// How many times a builder was invoked over the cache's lifetime.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("factorization panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("factorization panicked: {s}")
    } else {
        "factorization panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_never_builds_and_bumps_recency() {
        let c: SingleFlightCache<String, u64> =
            SingleFlightCache::new(2, LockRank::ShardPartitionCache);
        assert_eq!(c.peek(&"a".into()), None, "peek on an absent key is a miss");
        assert_eq!(c.builds(), 0, "peek must never run a builder");
        for (i, name) in ["a", "b"].iter().enumerate() {
            c.get_or_build(&name.to_string(), || Ok::<_, String>(i as u64)).expect("seed");
        }
        assert_eq!(c.peek(&"a".into()), Some(0));
        // The peek above touched "a", so inserting "c" must evict "b".
        c.get_or_build(&"c".into(), || Ok::<_, String>(2)).expect("insert c");
        assert_eq!(c.peek(&"a".into()), Some(0), "peeked entry must survive eviction");
        assert_eq!(c.peek(&"b".into()), None, "LRU entry must have been evicted");
    }

    #[test]
    fn peek_sees_neither_building_nor_poisoned() {
        let c: SingleFlightCache<String, u64> =
            SingleFlightCache::new(2, LockRank::ShardPartitionCache);
        let err = c.get_or_build(&"bad".into(), || Err::<u64, _>("boom")).unwrap_err();
        assert!(matches!(err, CacheError::BuildFailed(_)));
        assert_eq!(c.peek(&"bad".into()), None, "a quarantined key is not a ready value");
    }
}
