//! Registry conformance, pinned **by literal switch name**: every
//! runtime switch the workspace reacts to is asserted here — const ↔
//! environment-variable name agreement, membership in [`ALL`], and
//! off-value parsing through the real process environment. This file is
//! also what the `switch-coverage` lint rule counts as the "referenced
//! by a test" leg for the registry: adding a switch without extending
//! these tables fails `cargo run -p xtask -- lint`.

use kfds_switches::{
    Switch, ALL, KFDS_BATCH, KFDS_CPQR, KFDS_EVAL_GEMM, KFDS_KNN, KFDS_REFACTOR, KFDS_SERVE_BATCH,
    KFDS_SHARD, KFDS_SIMD, KFDS_WS_POOL,
};

/// Every registered switch, by const and by the literal name it must
/// sample from the environment.
const NAMED: &[(&Switch, &str)] = &[
    (&KFDS_SIMD, "KFDS_SIMD"),
    (&KFDS_WS_POOL, "KFDS_WS_POOL"),
    (&KFDS_CPQR, "KFDS_CPQR"),
    (&KFDS_EVAL_GEMM, "KFDS_EVAL_GEMM"),
    (&KFDS_KNN, "KFDS_KNN"),
    (&KFDS_REFACTOR, "KFDS_REFACTOR"),
    (&KFDS_SERVE_BATCH, "KFDS_SERVE_BATCH"),
    (&KFDS_SHARD, "KFDS_SHARD"),
    (&KFDS_BATCH, "KFDS_BATCH"),
];

#[test]
fn every_switch_const_matches_its_name_and_is_registered() {
    assert_eq!(NAMED.len(), ALL.len(), "extend NAMED when registering a new switch");
    for (sw, name) in NAMED {
        assert_eq!(sw.name, *name);
        assert!(ALL.iter().any(|s| s.name == *name), "{name} is not in kfds_switches::ALL");
        assert!(!sw.off_values.is_empty(), "{name} has no disabling values");
        assert!(!sw.doc.is_empty(), "{name} is undocumented");
    }
}

/// Off-value parsing against the real environment, for every switch.
/// Single test function: integration tests in one binary run on parallel
/// threads, and the process environment is shared state.
#[test]
fn off_values_flip_is_off_through_the_environment() {
    for (sw, name) in NAMED {
        std::env::remove_var(name);
        assert!(!sw.is_off(), "{name}: unset must select the default path");
        for off in sw.off_values {
            std::env::set_var(name, off);
            assert!(sw.is_off(), "{name}={off} must select the reference path");
        }
        std::env::set_var(name, "definitely-not-an-off-value");
        assert!(!sw.is_off(), "{name}: unrecognized values keep the default");
        std::env::remove_var(name);
    }
}
