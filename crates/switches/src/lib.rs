//! # kfds-switches — the runtime-switch registry
//!
//! Every `KFDS_*` environment variable the workspace reacts to is declared
//! here, exactly once, with its name, default, accepted disabling values,
//! and documentation. All other crates query the environment **only**
//! through this registry — `kfds-lint` (`cargo run -p xtask -- lint`)
//! rejects any raw `env::var("KFDS_…")` elsewhere, and the runtime-switch
//! table in `README.md` is generated from [`ALL`]
//! (`cargo run -p xtask -- switch-table --write`), so neither the code nor
//! the docs can drift from this file.
//!
//! ## Conventions
//!
//! Switches are kill-switches for performance subsystems: they default to
//! the fast path being **on**, and are read **once** per process (the
//! consumer caches the answer behind a `Once`; programmatic overrides like
//! `kfds_la::simd::set_simd_enabled` exist for benches and A/B tests).
//! Setting the variable to one of its `off_values` selects the reference
//! path bitwise.

#![forbid(unsafe_code)]

use std::ffi::OsString;

/// One registered runtime switch.
///
/// The registry is data, not behavior: consumers decide *when* to sample
/// ([`Switch::is_off`]) and how to cache the answer; the registry owns the
/// name, the default, and the documentation.
#[derive(Debug, Clone, Copy)]
pub struct Switch {
    /// Environment variable name (`KFDS_…`).
    pub name: &'static str,
    /// Human-readable default state (the fast path).
    pub default: &'static str,
    /// Values that select the reference/disabled path. Any other value —
    /// including unset — leaves the default behavior.
    pub off_values: &'static [&'static str],
    /// What disabling the switch does (README "Effect" column).
    pub doc: &'static str,
}

impl Switch {
    /// Raw environment value, if set. This is the single place in the
    /// workspace where a `KFDS_*` variable is read.
    pub fn raw(&self) -> Option<OsString> {
        std::env::var_os(self.name)
    }

    /// `true` if the environment selects this switch's disabled/reference
    /// path (i.e. the value is one of [`Switch::off_values`]).
    pub fn is_off(&self) -> bool {
        self.raw().is_some_and(|v| self.off_values.iter().any(|off| v == *off))
    }

    /// The README table cell listing the disabling values, e.g.
    /// `` `off` / `0` ``.
    pub fn off_values_markdown(&self) -> String {
        self.off_values.iter().map(|v| format!("`{v}`")).collect::<Vec<_>>().join(" / ")
    }
}

/// `KFDS_SIMD`: kill-switch for the explicit vector microkernels.
pub const KFDS_SIMD: Switch = Switch {
    name: "KFDS_SIMD",
    default: "on",
    off_values: &["off", "0"],
    doc: "disables the `kfds_la::simd` vector microkernels; every primitive \
          takes its scalar reference path, reproducing the pre-SIMD numerics \
          **bitwise**",
};

/// `KFDS_WS_POOL`: kill-switch for the thread-local workspace pool.
pub const KFDS_WS_POOL: Switch = Switch {
    name: "KFDS_WS_POOL",
    default: "on",
    off_values: &["off", "0"],
    doc: "disables the `kfds_la::workspace` buffer pool; every scratch take \
          allocates, reproducing pre-pool allocation behavior bitwise",
};

/// `KFDS_CPQR`: selects the legacy unblocked column-pivoted QR.
pub const KFDS_CPQR: Switch = Switch {
    name: "KFDS_CPQR",
    default: "blocked",
    off_values: &["unblocked", "off", "0"],
    doc: "forces the legacy one-reflector column-pivoted QR instead of the \
          blocked (`DLAQPS`-style) panel factorization, reproducing \
          pre-blocking skeletonization numerics **bitwise**",
};

/// `KFDS_EVAL_GEMM`: kill-switch for GEMM-backed kernel block assembly.
pub const KFDS_EVAL_GEMM: Switch = Switch {
    name: "KFDS_EVAL_GEMM",
    default: "on",
    off_values: &["off", "0"],
    doc: "disables GEMM-backed kernel block assembly (`eval_block` / \
          `eval_symmetric`); blocks are evaluated entry-by-entry on the \
          scalar path, bitwise-identical to the pre-GEMM code",
};

/// `KFDS_KNN`: selects the legacy scalar k-nearest-neighbor search.
pub const KFDS_KNN: Switch = Switch {
    name: "KFDS_KNN",
    default: "blocked",
    off_values: &["scalar", "off", "0"],
    doc: "forces the legacy scalar kNN paths (per-point ball-tree descent \
          and per-pair candidate scoring) instead of the blocked \
          GEMM-tile dual-tree / bucket scoring pipeline, for A/B runs",
};

/// `KFDS_REFACTOR`: kill-switch for λ-sweep refactorization.
pub const KFDS_REFACTOR: Switch = Switch {
    name: "KFDS_REFACTOR",
    default: "on",
    off_values: &["off", "0"],
    doc: "disables λ-sweep refactorization: `lambda_sweep`, the GP noise-grid \
          fit, and the serve tier's factor stage rebuild every factorization \
          from scratch per λ (re-evaluating all kernel blocks, the legacy \
          path) instead of refactoring over cached λ-independent \
          `AssembledBlocks`",
};

/// `KFDS_SERVE_BATCH`: kill-switch for multi-RHS request coalescing.
pub const KFDS_SERVE_BATCH: Switch = Switch {
    name: "KFDS_SERVE_BATCH",
    default: "on",
    off_values: &["off", "0"],
    doc: "disables `kfds-serve`'s multi-RHS request coalescing; every queued \
          request dispatches as a batch of 1 (unbatched serving, for A/B \
          throughput comparisons)",
};

/// `KFDS_SHARD`: kill-switch for the sharded serve tier.
pub const KFDS_SHARD: Switch = Switch {
    name: "KFDS_SHARD",
    default: "on",
    off_values: &["off", "0"],
    doc: "disables the sharded serve tier: `sharded(p)` services skip the \
          shard router and run every solve on the single-node blocked path \
          (bitwise-identical answers — the router only repartitions the \
          same arithmetic)",
};

/// `KFDS_BATCH`: kill-switch for the level-batched execution engine.
pub const KFDS_BATCH: Switch = Switch {
    name: "KFDS_BATCH",
    default: "on",
    off_values: &["off", "0"],
    doc: "disables the level-batched execution engine: skeletonization, \
          kernel block assembly, and factorization fall back to per-node \
          calls inside each level's `par_iter` instead of planned \
          shape-grouped launches (bitwise-identical answers — batching \
          changes scheduling, not arithmetic)",
};

/// Every registered switch, in README table order. New switches must be
/// added here (and nowhere else) — the lint and the README generator both
/// iterate this array.
pub const ALL: &[&Switch] = &[
    &KFDS_SIMD,
    &KFDS_WS_POOL,
    &KFDS_CPQR,
    &KFDS_EVAL_GEMM,
    &KFDS_KNN,
    &KFDS_REFACTOR,
    &KFDS_SERVE_BATCH,
    &KFDS_SHARD,
    &KFDS_BATCH,
];

/// Renders the README runtime-switch table (markdown). The table between
/// the `<!-- switch-table:begin -->` / `<!-- switch-table:end -->` markers
/// in `README.md` is exactly this string (`cargo run -p xtask --
/// switch-table --write` regenerates it; `-- lint` fails on drift).
pub fn markdown_table() -> String {
    let mut out =
        String::from("| Variable | Disabling values | Default | Effect |\n|---|---|---|---|\n");
    for sw in ALL {
        // Collapse the multi-line doc strings into single table cells.
        let doc = sw.doc.split_whitespace().collect::<Vec<_>>().join(" ");
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            sw.name,
            sw.off_values_markdown(),
            sw.default,
            doc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_prefixed() {
        let mut names: Vec<&str> = ALL.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate switch names in registry");
        for name in names {
            assert!(name.starts_with("KFDS_"), "switch {name} must be KFDS_-prefixed");
        }
    }

    #[test]
    fn is_off_honors_every_registered_off_value() {
        // Uses a scratch name so the test cannot race other tests that
        // configure real switches through the process environment.
        let sw = Switch {
            name: "KFDS_TEST_SCRATCH_SWITCH",
            default: "on",
            off_values: &["off", "0"],
            doc: "test-only",
        };
        std::env::remove_var(sw.name);
        assert!(!sw.is_off(), "unset must mean default-on");
        for v in sw.off_values {
            std::env::set_var(sw.name, v);
            assert!(sw.is_off(), "value {v} must disable");
        }
        std::env::set_var(sw.name, "definitely-not-an-off-value");
        assert!(!sw.is_off());
        std::env::remove_var(sw.name);
    }

    #[test]
    fn markdown_table_covers_all_switches() {
        let t = markdown_table();
        for sw in ALL {
            assert!(t.contains(sw.name), "table must mention {}", sw.name);
        }
        assert_eq!(t.lines().count(), 2 + ALL.len(), "one row per switch plus header");
    }
}
