//! Triangular solves (TRSV/TRSM analogues), column-oriented.

use crate::blas1::axpy;
use crate::mat::{MatMut, MatRef};

/// Solves `L x = b` in place, where `L` is the lower triangle of `a`.
///
/// With `unit_diag`, the diagonal is taken to be 1 (as in the packed LU
/// format) and the stored diagonal is ignored.
///
/// # Panics
/// Panics on dimension mismatch or (debug) non-square `a`.
pub fn solve_lower_inplace(a: MatRef<'_>, unit_diag: bool, b: &mut [f64]) {
    let n = a.ncols();
    debug_assert_eq!(a.nrows(), n, "triangular solve needs a square matrix");
    assert_eq!(b.len(), n, "solve_lower: rhs length mismatch");
    for j in 0..n {
        let col = a.col(j);
        if !unit_diag {
            b[j] /= col[j];
        }
        let xj = b[j];
        if xj != 0.0 {
            axpy(-xj, &col[j + 1..], &mut b[j + 1..]);
        }
    }
}

/// Solves `U x = b` in place, where `U` is the upper triangle of `a`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn solve_upper_inplace(a: MatRef<'_>, b: &mut [f64]) {
    let n = a.ncols();
    debug_assert_eq!(a.nrows(), n, "triangular solve needs a square matrix");
    assert_eq!(b.len(), n, "solve_upper: rhs length mismatch");
    for j in (0..n).rev() {
        let col = a.col(j);
        b[j] /= col[j];
        let xj = b[j];
        if xj != 0.0 {
            axpy(-xj, &col[..j], &mut b[..j]);
        }
    }
}

/// Solves `L X = B` in place for a multi-column right-hand side.
pub fn solve_lower_mat_inplace(a: MatRef<'_>, unit_diag: bool, mut b: MatMut<'_>) {
    assert_eq!(a.ncols(), b.nrows(), "trsm: dimension mismatch");
    for j in 0..b.ncols() {
        solve_lower_inplace(a, unit_diag, b.col_mut(j));
    }
}

/// Solves `U X = B` in place for a multi-column right-hand side.
pub fn solve_upper_mat_inplace(a: MatRef<'_>, mut b: MatMut<'_>) {
    assert_eq!(a.ncols(), b.nrows(), "trsm: dimension mismatch");
    for j in 0..b.ncols() {
        solve_upper_inplace(a, b.col_mut(j));
    }
}

/// Solves `U^T x = b` in place (forward substitution on the upper triangle).
pub fn solve_upper_transpose_inplace(a: MatRef<'_>, b: &mut [f64]) {
    let n = a.ncols();
    assert_eq!(b.len(), n, "solve_upper_t: rhs length mismatch");
    // U^T is lower triangular with U^T[i,j] = U[j,i]; column j of U holds
    // row j of U^T contiguously, so use dot-based substitution.
    for i in 0..n {
        let col = a.col(i);
        let s = crate::blas1::dot(&col[..i], &b[..i]);
        b[i] = (b[i] - s) / col[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    fn lower(n: usize) -> Mat {
        Mat::from_fn(n, n, |i, j| {
            if i > j {
                0.3 * ((i * n + j) as f64).sin()
            } else if i == j {
                2.0 + i as f64
            } else {
                0.0
            }
        })
    }

    fn upper(n: usize) -> Mat {
        lower(n).transpose()
    }

    #[test]
    fn lower_solve_roundtrip() {
        let l = lower(7);
        let x_true: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let mut b = vec![0.0; 7];
        crate::blas2::gemv(1.0, l.rb(), &x_true, 0.0, &mut b);
        solve_lower_inplace(l.rb(), false, &mut b);
        for (u, v) in b.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_lower_ignores_diagonal() {
        let mut l = lower(5);
        for i in 0..5 {
            l[(i, i)] = 1.0;
        }
        let x_true = vec![1.0, -1.0, 2.0, 0.5, 3.0];
        let mut b = vec![0.0; 5];
        crate::blas2::gemv(1.0, l.rb(), &x_true, 0.0, &mut b);
        // Poison the stored diagonal; unit solve must not read it.
        for i in 0..5 {
            l[(i, i)] = f64::NAN;
        }
        solve_lower_inplace(l.rb(), true, &mut b);
        for (u, v) in b.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_solve_roundtrip() {
        let u = upper(6);
        let x_true: Vec<f64> = (0..6).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut b = vec![0.0; 6];
        crate::blas2::gemv(1.0, u.rb(), &x_true, 0.0, &mut b);
        solve_upper_inplace(u.rb(), &mut b);
        for (a, v) in b.iter().zip(&x_true) {
            assert!((a - v).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_transpose_solve() {
        let u = upper(6);
        let ut = u.transpose();
        let x_true: Vec<f64> = (0..6).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut b = vec![0.0; 6];
        crate::blas2::gemv(1.0, ut.rb(), &x_true, 0.0, &mut b);
        solve_upper_transpose_inplace(u.rb(), &mut b);
        for (a, v) in b.iter().zip(&x_true) {
            assert!((a - v).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_rhs_matches_single() {
        let l = lower(5);
        let mut b = Mat::from_fn(5, 3, |i, j| (i + j) as f64 + 1.0);
        let mut cols: Vec<Vec<f64>> = (0..3).map(|j| b.col(j).to_vec()).collect();
        solve_lower_mat_inplace(l.rb(), false, b.rb_mut());
        for (j, col) in cols.iter_mut().enumerate() {
            solve_lower_inplace(l.rb(), false, col);
            assert_eq!(b.col(j), col.as_slice());
        }
    }
}
