//! Householder QR factorization and reflector utilities.
//!
//! The reflector helpers here are shared with the column-pivoted,
//! rank-revealing variant in [`crate::cpqr`], which is what the
//! interpolative decomposition (skeletonization) is built on.

use crate::blas1::{axpy, dot, nrm2};
use crate::mat::{Mat, MatMut};

/// Computes a Householder reflector for `x` in place.
///
/// On return `x\[0\]` holds the resulting `R` diagonal entry (beta) and
/// `x[1..]` holds the reflector tail `v` (with implicit `v\[0\] = 1`); the
/// returned `tau` satisfies `H = I - tau * v v^T`, `H x = beta e_1`.
pub fn make_householder(x: &mut [f64]) -> f64 {
    let alpha = x[0];
    let xnorm = nrm2(&x[1..]);
    if xnorm == 0.0 {
        return 0.0; // Already in e_1 direction; H = I.
    }
    let beta = -(alpha.signum()) * (alpha * alpha + xnorm * xnorm).sqrt();
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for v in &mut x[1..] {
        *v *= scale;
    }
    x[0] = beta;
    tau
}

/// Applies `H = I - tau v v^T` (reflector tail `v`, implicit leading 1) to
/// every column of `a` from the left: `a[:, j] = H a[:, j]`.
///
/// `a` must have the same number of rows as `1 + v.len()`.
pub fn apply_householder_left(v: &[f64], tau: f64, mut a: MatMut<'_>) {
    if tau == 0.0 {
        return;
    }
    debug_assert_eq!(a.nrows(), v.len() + 1);
    for j in 0..a.ncols() {
        let col = a.col_mut(j);
        let w = tau * (col[0] + dot(v, &col[1..]));
        col[0] -= w;
        axpy(-w, v, &mut col[1..]);
    }
}

/// A (thin) Householder QR factorization `A = Q R`.
#[derive(Clone, Debug)]
pub struct Qr {
    /// Packed reflectors below the diagonal, `R` on and above.
    qr: Mat,
    tau: Vec<f64>,
}

impl Qr {
    /// Factorizes `a` (consumed), `m >= n` or `m < n` both supported.
    pub fn factor(mut a: Mat) -> Self {
        let m = a.nrows();
        let n = a.ncols();
        let kmax = m.min(n);
        let mut tau = vec![0.0; kmax];
        for k in 0..kmax {
            let t = {
                let col = &mut a.col_mut(k)[k..];
                make_householder(col)
            };
            tau[k] = t;
            if t != 0.0 && k + 1 < n {
                let stride = m;
                let (head, tail) = a.as_mut_slice().split_at_mut((k + 1) * m);
                let v = head[k * m + k + 1..(k + 1) * m].to_vec();
                let trailing = MatMut::from_parts(&mut tail[k..], m - k, n - k - 1, stride);
                apply_householder_left(&v, t, trailing);
            }
        }
        Qr { qr: a, tau }
    }

    /// The upper-triangular factor `R` (`min(m,n) x n`).
    pub fn r(&self) -> Mat {
        let k = self.qr.nrows().min(self.qr.ncols());
        Mat::from_fn(k, self.qr.ncols(), |i, j| if i <= j { self.qr[(i, j)] } else { 0.0 })
    }

    /// The thin orthogonal factor `Q` (`m x min(m,n)`).
    pub fn q(&self) -> Mat {
        let m = self.qr.nrows();
        let k = m.min(self.qr.ncols());
        let mut q = Mat::zeros(m, k);
        for i in 0..k {
            q[(i, i)] = 1.0;
        }
        // Accumulate Q = H_0 H_1 ... H_{k-1} I by applying reflectors in
        // reverse order.
        for kk in (0..k).rev() {
            let t = self.tau[kk];
            if t == 0.0 {
                continue;
            }
            let v = self.qr.col(kk)[kk + 1..].to_vec();
            let qview = q.rb_mut().submatrix_mut(kk..m, 0..k);
            apply_householder_left(&v, t, qview);
        }
        q
    }

    /// Applies `Q^T` to a vector in place (length `m`).
    pub fn apply_qt(&self, x: &mut [f64]) {
        let m = self.qr.nrows();
        assert_eq!(x.len(), m);
        let k = m.min(self.qr.ncols());
        for kk in 0..k {
            let t = self.tau[kk];
            if t == 0.0 {
                continue;
            }
            let v = &self.qr.col(kk)[kk + 1..];
            let w = t * (x[kk] + dot(v, &x[kk + 1..]));
            x[kk] -= w;
            axpy(-w, v, &mut x[kk + 1..]);
        }
    }

    /// Least-squares solve `min ||A x - b||` for `m >= n` (returns `x`).
    pub fn solve_ls(&self, b: &[f64]) -> Vec<f64> {
        let n = self.qr.ncols();
        assert!(self.qr.nrows() >= n, "solve_ls requires m >= n");
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        let mut x = y[..n].to_vec();
        crate::tri::solve_upper_inplace(self.qr.submatrix(0..n, 0..n), &mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_op, Trans};

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn householder_annihilates() {
        let mut x = vec![3.0, 4.0, 0.0, 12.0];
        let orig = x.clone();
        let norm = nrm2(&x);
        let tau = make_householder(&mut x);
        // Applying H to the original vector must give (beta, 0, 0, 0).
        let v = x[1..].to_vec();
        let mut m = Mat::from_col_major(4, 1, orig);
        apply_householder_left(&v, tau, m.rb_mut());
        assert!((m[(0, 0)].abs() - norm).abs() < 1e-12);
        for i in 1..4 {
            assert!(m[(i, 0)].abs() < 1e-12);
        }
    }

    #[test]
    fn qr_reconstructs() {
        for &(m, n) in &[(6, 6), (10, 4), (4, 7)] {
            let a = rand_mat(m, n, (m * 31 + n) as u64);
            let f = Qr::factor(a.clone());
            let rec = matmul(&f.q(), &f.r());
            for j in 0..n {
                for i in 0..m {
                    assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10, "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn q_is_orthonormal() {
        let a = rand_mat(12, 5, 9);
        let q = Qr::factor(a).q();
        let qtq = matmul_op(&q, Trans::Yes, &q, Trans::No);
        for j in 0..5 {
            for i in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((qtq[(i, j)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn least_squares_consistent_system() {
        let a = rand_mat(9, 4, 17);
        let x_true = [1.0, -2.0, 0.5, 3.0];
        let mut b = vec![0.0; 9];
        crate::blas2::gemv(1.0, a.rb(), &x_true, 0.0, &mut b);
        let x = Qr::factor(a).solve_ls(&b);
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
