//! Level-2 BLAS-style kernels: matrix-vector products and rank-1 updates.

use crate::blas1::{axpy, dot};
use crate::mat::{MatMut, MatRef};

/// `y = alpha * A * x + beta * y`.
///
/// Walks `A` column-by-column (contiguous in column-major storage). With
/// SIMD active the columns are blocked four at a time through the AVX2
/// kernel so each load of `y` amortizes four FMA columns; the scalar path
/// (an `axpy` per unit-stride column) stays the reference implementation
/// under `KFDS_SIMD=off`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemv(alpha: f64, a: MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.ncols(), x.len(), "gemv: A.ncols != x.len");
    assert_eq!(a.nrows(), y.len(), "gemv: A.nrows != y.len");
    if beta == 0.0 {
        y.fill(0.0);
    } else if beta != 1.0 {
        crate::blas1::scal(beta, y);
    }
    if alpha == 0.0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if a.nrows() >= 4 && a.ncols() > 0 && crate::simd::active() {
            // SAFETY: active() implies AVX2+FMA; the view exposes
            // `col_stride * (ncols - 1) + nrows` elements from `as_ptr()`
            // and the length asserts above cover x and y.
            unsafe {
                crate::simd::dgemv_add_avx2(
                    a.nrows(),
                    a.ncols(),
                    alpha,
                    a.as_ptr(),
                    a.col_stride(),
                    x.as_ptr(),
                    y.as_mut_ptr(),
                );
            }
            return;
        }
    }
    for (j, &xv) in x.iter().enumerate() {
        let xj = alpha * xv;
        if xj != 0.0 {
            axpy(xj, a.col(j), y);
        }
    }
}

/// `y = alpha * A^T * x + beta * y`.
///
/// Each output element is a dot product with a contiguous column of `A`.
/// With SIMD active and `beta == 0` the columns are blocked four at a
/// time through the AVX2 kernel so each load of `x` amortizes four column
/// streams; the scalar path (one `dot` per column) stays the reference
/// implementation under `KFDS_SIMD=off`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemv_t(alpha: f64, a: MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.nrows(), x.len(), "gemv_t: A.nrows != x.len");
    assert_eq!(a.ncols(), y.len(), "gemv_t: A.ncols != y.len");
    #[cfg(target_arch = "x86_64")]
    {
        if beta == 0.0 && alpha != 0.0 && a.nrows() >= 8 && a.ncols() >= 4 && crate::simd::active()
        {
            // SAFETY: active() implies AVX2+FMA (avx512_supported gates
            // the 8-wide variant); the view exposes
            // `col_stride * (ncols - 1) + nrows` elements from `as_ptr()`
            // and the length asserts above cover x and y.
            unsafe {
                if crate::simd::avx512_supported() {
                    crate::simd::dgemv_t_avx512(
                        a.nrows(),
                        a.ncols(),
                        alpha,
                        a.as_ptr(),
                        a.col_stride(),
                        x.as_ptr(),
                        y.as_mut_ptr(),
                    );
                } else {
                    crate::simd::dgemv_t_avx2(
                        a.nrows(),
                        a.ncols(),
                        alpha,
                        a.as_ptr(),
                        a.col_stride(),
                        x.as_ptr(),
                        y.as_mut_ptr(),
                    );
                }
            }
            return;
        }
    }
    for (j, yj) in y.iter_mut().enumerate() {
        let d = if alpha == 0.0 { 0.0 } else { alpha * dot(a.col(j), x) };
        *yj = if beta == 0.0 { d } else { beta * *yj + d };
    }
}

/// Rank-1 update `A += alpha * x * y^T`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], mut a: MatMut<'_>) {
    assert_eq!(a.nrows(), x.len(), "ger: A.nrows != x.len");
    assert_eq!(a.ncols(), y.len(), "ger: A.ncols != y.len");
    if alpha == 0.0 {
        return;
    }
    for (j, &yv) in y.iter().enumerate() {
        let s = alpha * yv;
        if s != 0.0 {
            axpy(s, x, a.col_mut(j));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    fn naive_gemv(a: &Mat, x: &[f64]) -> Vec<f64> {
        (0..a.nrows()).map(|i| (0..a.ncols()).map(|j| a[(i, j)] * x[j]).sum()).collect()
    }

    #[test]
    fn gemv_matches_naive() {
        let a = Mat::from_fn(4, 3, |i, j| (i as f64 + 1.0) * (j as f64 - 1.5));
        let x = [1.0, -2.0, 0.5];
        let mut y = vec![1.0; 4];
        gemv(2.0, a.rb(), &x, 3.0, &mut y);
        let naive = naive_gemv(&a, &x);
        for i in 0..4 {
            assert!((y[i] - (2.0 * naive[i] + 3.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_t_matches_transpose() {
        let a = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.25);
        let at = a.transpose();
        let x = [0.5, -1.0, 2.0, 3.0];
        let mut y1 = vec![0.0; 3];
        let mut y2 = vec![0.0; 3];
        gemv_t(1.5, a.rb(), &x, 0.0, &mut y1);
        gemv(1.5, at.rb(), &x, 0.0, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn ger_rank1() {
        let mut a = Mat::zeros(3, 2);
        ger(2.0, &[1.0, 2.0, 3.0], &[4.0, 5.0], a.rb_mut());
        assert_eq!(a[(2, 1)], 2.0 * 3.0 * 5.0);
        assert_eq!(a[(0, 0)], 8.0);
    }

    #[test]
    fn gemv_beta_zero_clears_nan() {
        let a = Mat::zeros(2, 2);
        let mut y = vec![f64::NAN; 2];
        gemv(1.0, a.rb(), &[1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![0.0, 0.0]);
    }
}
