//! Level-3 BLAS-style blocked matrix-matrix multiply.
//!
//! The implementation follows the BLIS/GotoBLAS structure the paper's GSKS
//! kernel builds on: the operands are packed into cache-resident panels and
//! multiplied by an `MR x NR` register-tile microkernel, with rayon
//! parallelism across disjoint column panels of `C`.

use crate::mat::{MatMut, MatRef};

/// Whether an operand is used as-is or transposed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Register tile rows of the microkernel (shared with the AVX2 kernel:
/// two 4-wide vector registers per column).
const MR: usize = crate::simd::GEMM_MR;
/// Register tile columns of the microkernel — 6 columns x 2 row vectors
/// leaves 12 of the 16 `ymm` registers as accumulators, the BLIS-style
/// 8x6 double-precision tiling for AVX2.
const NR: usize = crate::simd::GEMM_NR;
/// Cache block sizes (L2-ish for A panel, L1-ish for the k dimension).
const MC: usize = 256;
const KC: usize = 256;
/// Column-panel width for parallel splitting.
const NC_PAR: usize = 512;
/// Minimum row count before a tall-skinny product splits over rows.
const MC_PAR: usize = 2 * MC;

/// Cumulative column- and row-panel parallel splits, for tests asserting
/// the parallelization policy (tall-skinny products split over rows; GEMMs
/// issued from inside an already-parallel rayon scope stay serial).
static COL_SPLITS: AtomicUsize = AtomicUsize::new(0);
static ROW_SPLITS: AtomicUsize = AtomicUsize::new(0);

use std::sync::atomic::{AtomicUsize, Ordering};

/// `(column_splits, row_splits)` performed since process start.
#[doc(hidden)]
pub fn par_split_counts() -> (usize, usize) {
    (COL_SPLITS.load(Ordering::Relaxed), ROW_SPLITS.load(Ordering::Relaxed))
}

/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// The parallelization decision is made once per top-level call: a GEMM
/// issued from inside an already-parallel rayon scope (a pool worker, i.e.
/// `rayon::current_thread_index()` is `Some`) runs serially, because the
/// outer loop already owns the cores; a GEMM issued from outside the pool
/// recursively bisects `C` — over columns for wide products, over
/// MC-aligned row panels for tall-skinny ones (`n <= NC_PAR`).
///
/// # Panics
/// Panics on dimension mismatch between `op(A)`, `op(B)` and `C`.
pub fn gemm(
    alpha: f64,
    a: MatRef<'_>,
    ta: Trans,
    b: MatRef<'_>,
    tb: Trans,
    beta: f64,
    c: MatMut<'_>,
) {
    let (m, ka) = op_shape(a, ta);
    let (kb, n) = op_shape(b, tb);
    assert_eq!(ka, kb, "gemm: inner dimension mismatch");
    assert_eq!(c.nrows(), m, "gemm: C row mismatch");
    assert_eq!(c.ncols(), n, "gemm: C col mismatch");
    let parallel = rayon::current_num_threads() > 1 && rayon::current_thread_index().is_none();
    gemm_parallel(alpha, a, ta, b, tb, beta, c, ka, parallel);
}

/// Convenience wrapper: returns `A * B` as a new matrix.
///
/// The result buffer comes from the workspace pool without zero-filling
/// (the `beta = 0` path of the blocked kernel overwrites it), saving both
/// an allocation and a redundant memset per call.
pub fn matmul(a: &crate::mat::Mat, b: &crate::mat::Mat) -> crate::mat::Mat {
    matmul_op(a, Trans::No, b, Trans::No)
}

/// Convenience wrapper: returns `op(A) * op(B)` as a new matrix.
pub fn matmul_op(
    a: &crate::mat::Mat,
    ta: Trans,
    b: &crate::mat::Mat,
    tb: Trans,
) -> crate::mat::Mat {
    let (m, _) = op_shape(a.rb(), ta);
    let (_, n) = op_shape(b.rb(), tb);
    let buf = crate::workspace::take(m * n).detach();
    let mut c = crate::mat::Mat::from_col_major(m, n, buf);
    gemm(1.0, a.rb(), ta, b.rb(), tb, 0.0, c.rb_mut());
    c
}

fn op_shape(a: MatRef<'_>, t: Trans) -> (usize, usize) {
    match t {
        Trans::No => (a.nrows(), a.ncols()),
        Trans::Yes => (a.ncols(), a.nrows()),
    }
}

#[inline]
fn op_get(a: MatRef<'_>, t: Trans, i: usize, j: usize) -> f64 {
    match t {
        Trans::No => a.get(i, j),
        Trans::Yes => a.get(j, i),
    }
}

/// Recursively bisects `C` into disjoint panels multiplied in parallel;
/// each leaf panel is handled by the serial blocked kernel. Wide products
/// (`n > NC_PAR`) split over NR-aligned column panels (with the matching
/// columns of `op(B)`); tall-skinny products (`n <= NC_PAR`, `m >= MC_PAR`)
/// split over MC-aligned row panels (with the matching rows of `op(A)`),
/// which is the shape the skeletonized sample blocks and telescoped
/// right-hand sides produce. Panels are disjoint — `split_at_col` /
/// `split_at_row` — so this is race-free by construction.
///
/// `parallel` is decided once at the top-level [`gemm`] entry (nested
/// GEMMs stay serial) and inherited by the recursive calls issued from
/// inside `rayon::join`, so the bisection itself still fans out.
#[allow(clippy::too_many_arguments)]
fn gemm_parallel(
    alpha: f64,
    a: MatRef<'_>,
    ta: Trans,
    b: MatRef<'_>,
    tb: Trans,
    beta: f64,
    c: MatMut<'_>,
    k: usize,
    parallel: bool,
) {
    let m = c.nrows();
    let n = c.ncols();
    if parallel && n > NC_PAR {
        COL_SPLITS.fetch_add(1, Ordering::Relaxed);
        let half = (n / 2).div_ceil(NR) * NR;
        let half = half.min(n);
        let (cl, cr) = c.split_at_col(half);
        let (bl, br) = match tb {
            Trans::No => (b.submatrix(0..k, 0..half), b.submatrix(0..k, half..n)),
            Trans::Yes => (b.submatrix(0..half, 0..k), b.submatrix(half..n, 0..k)),
        };
        rayon::join(
            || gemm_parallel(alpha, a, ta, bl, tb, beta, cl, k, parallel),
            || gemm_parallel(alpha, a, ta, br, tb, beta, cr, k, parallel),
        );
    } else if parallel && m >= MC_PAR {
        ROW_SPLITS.fetch_add(1, Ordering::Relaxed);
        // MC-aligned midpoint: both halves stay multiples of the cache
        // block except possibly the last, mirroring the serial ic loop.
        // Clamped to the largest MC multiple below m so the invariant
        // survives `m / 2` rounding up past `m` (m >= MC_PAR = 2*MC, so
        // the clamp is always a positive multiple of MC).
        let half = (m / 2).next_multiple_of(MC).min((m - 1) / MC * MC);
        let (ct, cb) = c.split_at_row(half);
        let (at, ab) = match ta {
            Trans::No => (a.submatrix(0..half, 0..k), a.submatrix(half..m, 0..k)),
            Trans::Yes => (a.submatrix(0..k, 0..half), a.submatrix(0..k, half..m)),
        };
        rayon::join(
            || gemm_parallel(alpha, at, ta, b, tb, beta, ct, k, parallel),
            || gemm_parallel(alpha, ab, ta, b, tb, beta, cb, k, parallel),
        );
    } else {
        gemm_blocked(alpha, a, ta, b, tb, beta, c, k);
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    alpha: f64,
    a: MatRef<'_>,
    ta: Trans,
    b: MatRef<'_>,
    tb: Trans,
    beta: f64,
    mut c: MatMut<'_>,
    k: usize,
) {
    let m = c.nrows();
    let n = c.ncols();
    if m == 0 || n == 0 {
        return;
    }
    // Apply beta up front; the packed loops then always accumulate.
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for j in 0..n {
            crate::blas1::scal(beta, c.col_mut(j));
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }

    // Pooled packing panels: pack_a / pack_b overwrite every element they
    // expose to the macro kernel (including zero padding), so the stale
    // contents of a recycled buffer are never read.
    let mut apack = crate::workspace::take(MC.min(m).next_multiple_of(MR) * KC.min(k));
    let mut bpack = crate::workspace::take(KC.min(k) * n.next_multiple_of(NR));

    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        pack_b(b, tb, pc, kc, 0, n, &mut bpack);
        for ic in (0..m).step_by(MC) {
            let mc = MC.min(m - ic);
            pack_a(a, ta, ic, mc, pc, kc, &mut apack);
            macro_kernel(alpha, &apack, &bpack, mc, n, kc, ic, c.rb_mut());
        }
    }
}

/// Packs `op(A)[ic..ic+mc, pc..pc+kc]` into MR-row panels, zero-padded.
fn pack_a(a: MatRef<'_>, ta: Trans, ic: usize, mc: usize, pc: usize, kc: usize, out: &mut [f64]) {
    let panels = mc.div_ceil(MR);
    for p in 0..panels {
        let r0 = p * MR;
        let rows = MR.min(mc - r0);
        let base = p * MR * kc;
        if ta == Trans::No && rows == MR {
            // Fast path: contiguous column reads.
            for kk in 0..kc {
                let col = a.col(pc + kk);
                let dst = &mut out[base + kk * MR..base + kk * MR + MR];
                dst.copy_from_slice(&col[ic + r0..ic + r0 + MR]);
            }
        } else {
            for kk in 0..kc {
                for r in 0..MR {
                    out[base + kk * MR + r] =
                        if r < rows { op_get(a, ta, ic + r0 + r, pc + kk) } else { 0.0 };
                }
            }
        }
    }
}

/// Packs `op(B)[pc..pc+kc, jc..jc+nc]` into NR-column panels, zero-padded.
fn pack_b(b: MatRef<'_>, tb: Trans, pc: usize, kc: usize, jc: usize, nc: usize, out: &mut [f64]) {
    let panels = nc.div_ceil(NR);
    for p in 0..panels {
        let c0 = p * NR;
        let cols = NR.min(nc - c0);
        let base = p * NR * kc;
        for kk in 0..kc {
            for cl in 0..NR {
                out[base + kk * NR + cl] =
                    if cl < cols { op_get(b, tb, pc + kk, jc + c0 + cl) } else { 0.0 };
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    alpha: f64,
    apack: &[f64],
    bpack: &[f64],
    mc: usize,
    nc: usize,
    kc: usize,
    ic: usize,
    mut c: MatMut<'_>,
) {
    let mpanels = mc.div_ceil(MR);
    let npanels = nc.div_ceil(NR);
    // Captured once per macro tile: active() implies CPU support, which is
    // immutable, so a concurrent kill-switch flip cannot make the vector
    // call unsound — at worst one macro tile finishes on the old path.
    let use_simd = crate::simd::active();
    for jp in 0..npanels {
        let j0 = jp * NR;
        let jcols = NR.min(nc - j0);
        let bpanel = &bpack[jp * NR * kc..(jp * NR * kc) + NR * kc];
        for ipn in 0..mpanels {
            let i0 = ipn * MR;
            let irows = MR.min(mc - i0);
            let apanel = &apack[ipn * MR * kc..(ipn * MR * kc) + MR * kc];
            if use_simd
                && simd_micro_tile(alpha, apanel, bpanel, kc, irows, jcols, ic + i0, j0, &mut c)
            {
                continue;
            }
            let acc = micro_kernel(apanel, bpanel, kc);
            // Accumulate the (possibly partial) tile into C. Plain index
            // loops here: `jl`/`il` address both the tile and C.
            #[allow(clippy::needless_range_loop)]
            for jl in 0..jcols {
                let ccol = c.col_mut(j0 + jl);
                for il in 0..irows {
                    ccol[ic + i0 + il] += alpha * acc[il][jl];
                }
            }
        }
    }
}

/// Runs one register tile through the AVX2 microkernel, accumulating
/// `alpha * tile` into `C` at `(i0, j0)`. Full tiles are written straight
/// into `C` (no intermediate store); partial edge tiles go through a stack
/// buffer whose live part is accumulated. Returns `false` on non-x86
/// builds, where the caller falls back to the scalar reference tile.
#[allow(clippy::too_many_arguments)]
#[inline]
fn simd_micro_tile(
    alpha: f64,
    apanel: &[f64],
    bpanel: &[f64],
    kc: usize,
    irows: usize,
    jcols: usize,
    i0: usize,
    j0: usize,
    c: &mut MatMut<'_>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
        debug_assert!(i0 + irows <= c.nrows() && j0 + jcols <= c.ncols());
        let ldc = c.col_stride();
        if irows == MR && jcols == NR {
            // SAFETY: the caller's dispatch guarantees AVX2+FMA (active()
            // implies cpu_supported()); panel lengths and the full MR x NR
            // destination tile are checked above.
            unsafe {
                let cptr = c.as_mut_ptr().add(i0 + j0 * ldc);
                crate::simd::dgemm_tile_avx2(
                    kc,
                    alpha,
                    apanel.as_ptr(),
                    bpanel.as_ptr(),
                    cptr,
                    ldc,
                );
            }
        } else {
            let mut tile = [0.0f64; MR * NR];
            // SAFETY: as above, with the stack tile (ldc = MR) as C.
            unsafe {
                crate::simd::dgemm_tile_avx2(
                    kc,
                    alpha,
                    apanel.as_ptr(),
                    bpanel.as_ptr(),
                    tile.as_mut_ptr(),
                    MR,
                );
            }
            for jl in 0..jcols {
                let ccol = c.col_mut(j0 + jl);
                for (il, &t) in tile[jl * MR..jl * MR + irows].iter().enumerate() {
                    ccol[i0 + il] += t;
                }
            }
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // active() is always false off x86-64, but keep the signature used.
        let _ = (alpha, apanel, bpanel, kc, irows, jcols, i0, j0, c);
        false
    }
}

/// The `MR x NR` register-tile kernel: `acc = sum_k a_panel[:,k] * b_panel[k,:]`.
#[inline]
fn micro_kernel(apanel: &[f64], bpanel: &[f64], kc: usize) -> [[f64; NR]; MR] {
    let mut acc = [[0.0f64; NR]; MR];
    debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
    for kk in 0..kc {
        let av: &[f64] = &apanel[kk * MR..kk * MR + MR];
        let bv: &[f64] = &bpanel[kk * NR..kk * NR + NR];
        for (il, accrow) in acc.iter_mut().enumerate() {
            let ai = av[il];
            for (jl, accel) in accrow.iter_mut().enumerate() {
                *accel += ai * bv[jl];
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    fn naive(a: &Mat, ta: Trans, b: &Mat, tb: Trans) -> Mat {
        let (m, k) = op_shape(a.rb(), ta);
        let (_, n) = op_shape(b.rb(), tb);
        Mat::from_fn(m, n, |i, j| {
            (0..k).map(|p| op_get(a.rb(), ta, i, p) * op_get(b.rb(), tb, p, j)).sum()
        })
    }

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
        // Deterministic pseudo-random fill (LCG) to avoid test-only deps here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Mat::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn check_close(a: &Mat, b: &Mat, tol: f64) {
        assert_eq!((a.nrows(), a.ncols()), (b.nrows(), b.ncols()));
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < tol,
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn gemm_all_transpose_combos() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 13), (64, 33, 20)] {
            for &ta in &[Trans::No, Trans::Yes] {
                for &tb in &[Trans::No, Trans::Yes] {
                    let a = if ta == Trans::No { rand_mat(m, k, 1) } else { rand_mat(k, m, 2) };
                    let b = if tb == Trans::No { rand_mat(k, n, 3) } else { rand_mat(n, k, 4) };
                    let mut c = Mat::zeros(m, n);
                    gemm(1.0, a.rb(), ta, b.rb(), tb, 0.0, c.rb_mut());
                    check_close(&c, &naive(&a, ta, &b, tb), 1e-11 * k as f64);
                }
            }
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = rand_mat(10, 7, 5);
        let b = rand_mat(7, 9, 6);
        let c0 = rand_mat(10, 9, 7);
        let mut c = c0.clone();
        gemm(2.0, a.rb(), Trans::No, b.rb(), Trans::No, -0.5, c.rb_mut());
        let ab = naive(&a, Trans::No, &b, Trans::No);
        for j in 0..9 {
            for i in 0..10 {
                let want = 2.0 * ab[(i, j)] - 0.5 * c0[(i, j)];
                assert!((c[(i, j)] - want).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn gemm_large_crosses_block_boundaries() {
        let (m, k, n) = (MC + 19, KC + 5, 2 * NR + 3);
        let a = rand_mat(m, k, 11);
        let b = rand_mat(k, n, 12);
        let mut c = Mat::zeros(m, n);
        gemm(1.0, a.rb(), Trans::No, b.rb(), Trans::No, 0.0, c.rb_mut());
        check_close(&c, &naive(&a, Trans::No, &b, Trans::No), 1e-10 * k as f64);
    }

    #[test]
    fn gemm_on_submatrix_views() {
        let a = rand_mat(12, 12, 21);
        let b = rand_mat(12, 12, 22);
        let asub = a.submatrix(2..7, 3..11); // 5 x 8
        let bsub = b.submatrix(1..9, 4..10); // 8 x 6
        let mut c = Mat::zeros(5, 6);
        gemm(1.0, asub, Trans::No, bsub, Trans::No, 0.0, c.rb_mut());
        let aow = asub.to_mat();
        let bow = bsub.to_mat();
        check_close(&c, &naive(&aow, Trans::No, &bow, Trans::No), 1e-11);
    }

    #[test]
    fn gemm_empty_k() {
        let a = Mat::zeros(3, 0);
        let b = Mat::zeros(0, 2);
        let mut c = Mat::from_fn(3, 2, |i, j| (i + j) as f64);
        gemm(1.0, a.rb(), Trans::No, b.rb(), Trans::No, 1.0, c.rb_mut());
        assert_eq!(c[(2, 1)], 3.0);
    }

    #[test]
    fn parallel_split_policy() {
        // Both halves of the policy observed through the split counters, in
        // one test because the counters are process-global.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        pool.install(|| {
            // 1) A tall-skinny product issued from outside the rayon pool
            //    splits over MC-aligned row panels.
            let m = 2 * MC_PAR;
            let a = rand_mat(m, 8, 41);
            let b = rand_mat(8, 6, 42);
            let (_, rows0) = par_split_counts();
            let mut c = Mat::zeros(m, 6);
            gemm(1.0, a.rb(), Trans::No, b.rb(), Trans::No, 0.0, c.rb_mut());
            let (_, rows1) = par_split_counts();
            assert!(rows1 > rows0, "tall-skinny gemm should split over rows");
            check_close(&c, &naive(&a, Trans::No, &b, Trans::No), 1e-10);

            // 2) The same product issued from inside an already-parallel
            //    rayon scope stays serial: no new splits of either kind.
            use rayon::prelude::*;
            let (cols2, rows2) = par_split_counts();
            let outs: Vec<Mat> = (0..4usize)
                .into_par_iter()
                .map(|s| {
                    let a = rand_mat(m, 8, 50 + s as u64);
                    let b = rand_mat(8, 6, 60 + s as u64);
                    matmul(&a, &b)
                })
                .collect();
            let (cols3, rows3) = par_split_counts();
            assert_eq!(
                (cols3, rows3),
                (cols2, rows2),
                "gemm inside a par_iter scope must stay serial"
            );
            for (s, out) in outs.iter().enumerate() {
                let a = rand_mat(m, 8, 50 + s as u64);
                let b = rand_mat(8, 6, 60 + s as u64);
                check_close(out, &naive(&a, Trans::No, &b, Trans::No), 1e-10);
            }
        });
    }

    #[test]
    fn matmul_identity() {
        let a = rand_mat(8, 8, 31);
        let id = Mat::identity(8);
        check_close(&matmul(&a, &id), &a, 1e-14);
        check_close(&matmul(&id, &a), &a, 1e-14);
    }
}
