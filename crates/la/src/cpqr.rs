//! Column-pivoted, rank-revealing QR (LAPACK `GEQP3`-style) with early
//! truncation — the engine behind the interpolative decomposition.
//!
//! The paper selects the skeleton rank `s` such that
//! `sigma_{s+1}(K_{S'alpha}) / sigma_1 < tau`, with the singular values
//! estimated by the diagonal of the rank-revealing QR (§II-A). This module
//! implements exactly that truncation rule.
//!
//! Two execution paths share the truncation and pivoting rules:
//!
//! * **Blocked** (default, LAPACK `DLAQPS`-style): pivoted panels of
//!   [`NB`] columns accumulate their reflectors' action in an auxiliary
//!   matrix `F = tau * A^T V`, so the trailing matrix is only *read*
//!   during the panel (one GEMV per step) and *written* once per panel by
//!   a single rank-`nb` GEMM through the SIMD microkernel path. Pivot
//!   columns and pivot rows are updated just-in-time, so pivot decisions
//!   and the stored `R` match the unblocked elimination order.
//! * **Unblocked** (BLAS-2, one reflector applied at a time) — the
//!   original implementation, kept verbatim and selectable at runtime
//!   with `KFDS_CPQR=unblocked` (same kill-switch convention as
//!   `KFDS_SIMD`/`KFDS_WS_POOL`) for bitwise-reproducible numerics.

use crate::blas1::nrm2;
use crate::blas2::{gemv, gemv_t};
use crate::gemm::{gemm, Trans};
use crate::mat::{Mat, MatMut, MatRef};
use crate::qr::{apply_householder_left, make_householder};
use crate::workspace;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

/// Panel width of the blocked path (LAPACK-style `nb`).
pub const NB: usize = 32;
/// Minimum truncation bound `min(m, n, max_rank)` for which the blocked
/// path is used; below this the BLAS-2 loop wins and the panel machinery
/// is pure overhead.
const BLOCK_MIN: usize = 48;

/// Runtime kill-switch: `KFDS_CPQR=unblocked` (or `off`/`0`) forces the
/// original one-reflector-at-a-time path, which reproduces the pre-blocked
/// numerics bitwise.
static CPQR_BLOCKED: AtomicBool = AtomicBool::new(true);
static ENV_INIT: Once = Once::new();

/// Process-global count of factorizations that ran the blocked panel path
/// (used by the perf harness `--check` gate to detect silent fallbacks).
static BLOCKED_FACTORS: AtomicU64 = AtomicU64::new(0);

/// Whether the blocked panel path is selected (env + runtime override).
/// Small factorizations still use the unblocked loop regardless.
#[inline]
pub fn blocked_active() -> bool {
    ENV_INIT.call_once(|| {
        if kfds_switches::KFDS_CPQR.is_off() {
            CPQR_BLOCKED.store(false, Ordering::Relaxed);
        }
    });
    CPQR_BLOCKED.load(Ordering::Relaxed)
}

/// Enables or disables the blocked path at runtime (overrides `KFDS_CPQR`),
/// so the perf-trajectory harness can A/B both paths in one process.
pub fn set_cpqr_blocked(on: bool) {
    let _ = blocked_active(); // apply the env default first so it cannot clobber us
    CPQR_BLOCKED.store(on, Ordering::Relaxed);
}

/// Number of factorizations that took the blocked panel path so far.
pub fn blocked_factor_count() -> u64 {
    BLOCKED_FACTORS.load(Ordering::Relaxed)
}

/// A truncated column-pivoted QR factorization `A P = Q R`.
#[derive(Clone, Debug)]
pub struct ColPivQr {
    /// Packed reflectors below the diagonal, `R` on and above (columns in
    /// pivoted order).
    qr: Mat,
    tau: Vec<f64>,
    /// `perm[k]` is the original column index in pivot position `k`.
    perm: Vec<usize>,
    /// Truncation rank (number of accepted pivot columns).
    rank: usize,
    /// `|R[k,k]|` for each accepted step, monotonically non-increasing in
    /// exact arithmetic; used as singular-value estimates.
    rdiag: Vec<f64>,
}

impl ColPivQr {
    /// Factorizes `a` (consumed), truncating at relative tolerance `tol`
    /// and at `max_rank` columns.
    ///
    /// The rank is the smallest `s` with `|R[s,s]| <= tol * |R[0,0]|`
    /// (clamped to `max_rank` and `min(m, n)`). `tol == 0` disables the
    /// tolerance-based truncation.
    pub fn factor_truncated(a: Mat, tol: f64, max_rank: usize) -> Self {
        let kmax = a.nrows().min(a.ncols()).min(max_rank);
        if blocked_active() && kmax >= BLOCK_MIN {
            Self::factor_truncated_blocked(a, tol, max_rank)
        } else {
            Self::factor_truncated_unblocked(a, tol, max_rank)
        }
    }

    /// BLAS-2 reference path: one Householder reflector applied to the
    /// full trailing matrix per pivot step. This is the original
    /// implementation, preserved verbatim so `KFDS_CPQR=unblocked`
    /// reproduces historical numerics bitwise.
    pub fn factor_truncated_unblocked(mut a: Mat, tol: f64, max_rank: usize) -> Self {
        let m = a.nrows();
        let n = a.ncols();
        let kmax = m.min(n).min(max_rank);
        let mut perm: Vec<usize> = (0..n).collect();
        let mut tau = Vec::with_capacity(kmax);
        let mut rdiag = Vec::with_capacity(kmax);

        // Residual column norms, downdated incrementally and recomputed when
        // cancellation makes the downdate untrustworthy (LAPACK heuristic).
        let mut norms: Vec<f64> = (0..n).map(|j| nrm2(a.col(j))).collect();
        let mut norms_ref = norms.clone();
        let mut first_pivot_norm = 0.0f64;

        let mut rank = 0;
        for k in 0..kmax {
            // Pivot: residual column with the largest norm.
            let (p, &pn) = norms[k..]
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).expect("NaN column norm"))
                .expect("non-empty pivot range");
            let p = k + p;
            if k == 0 {
                first_pivot_norm = pn;
            }
            // Truncation rule: sigma_{k+1}/sigma_1 estimated by pivot norms.
            if pn == 0.0 || (tol > 0.0 && k > 0 && pn <= tol * first_pivot_norm) {
                break;
            }
            a.swap_cols(k, p);
            norms.swap(k, p);
            norms_ref.swap(k, p);
            perm.swap(k, p);

            let t = {
                let col = &mut a.col_mut(k)[k..];
                make_householder(col)
            };
            tau.push(t);
            rdiag.push(a[(k, k)].abs());
            rank = k + 1;

            if k + 1 < n && t != 0.0 {
                let (head, tail) = a.as_mut_slice().split_at_mut((k + 1) * m);
                let v = head[k * m + k + 1..(k + 1) * m].to_vec();
                let trailing = MatMut::from_parts(&mut tail[k..], m - k, n - k - 1, m);
                apply_householder_left(&v, t, trailing);
            }
            // Downdate residual norms of the trailing columns.
            for j in k + 1..n {
                if norms[j] == 0.0 {
                    continue;
                }
                let r = a[(k, j)].abs() / norms[j];
                let d = (1.0 - r * r).max(0.0);
                // If the downdate lost too much accuracy, recompute exactly.
                let ratio = norms[j] / norms_ref[j];
                if d * ratio * ratio <= 1e-14 {
                    norms[j] = nrm2(&a.col(j)[k + 1..]);
                    norms_ref[j] = norms[j];
                } else {
                    norms[j] *= d.sqrt();
                }
            }
        }
        ColPivQr { qr: a, tau, perm, rank, rdiag }
    }

    /// Blocked (LAPACK `DLAQPS`-style) path: within a panel of [`NB`]
    /// pivot steps the trailing matrix is only read (`F` accumulation);
    /// the rank-`nb` write-back `A22 -= V F2^T` happens once per panel as
    /// a GEMM. Pivot selection, the truncation rule and the norm-downdate
    /// heuristic are identical to the unblocked path; the one structural
    /// difference is that a column whose downdated norm becomes
    /// untrustworthy ends the panel early and is recomputed *after* the
    /// deferred trailing update (its below-panel rows are stale until
    /// then), exactly as `DLAQPS` does with its `lsticc` mechanism.
    pub fn factor_truncated_blocked(mut a: Mat, tol: f64, max_rank: usize) -> Self {
        BLOCKED_FACTORS.fetch_add(1, Ordering::Relaxed);
        let m = a.nrows();
        let n = a.ncols();
        let kmax = m.min(n).min(max_rank);
        let mut perm: Vec<usize> = (0..n).collect();
        let mut tau = Vec::with_capacity(kmax);
        let mut rdiag = Vec::with_capacity(kmax);

        // Residual norms are tracked *squared* on this path: the downdate
        // `norms2 -= A[k,j]^2` is one FMA per column (the sqrt-domain
        // downdate costs a divide and a square root per column per step,
        // which is a sizeable fraction of the whole factorization on
        // cache-resident blocks). Pivot order, the truncation rule and the
        // staleness guard are algebraically identical:
        // `d * ratio^2 = (norms^2 - a^2) / norms_ref^2`.
        let mut norms2: Vec<f64> = (0..n)
            .map(|j| {
                let c = a.col(j);
                crate::blas1::dot(c, c)
            })
            .collect();
        let mut norms2_ref = norms2.clone();
        let mut first_pivot_norm2 = 0.0f64;
        let mut rank = 0;

        // Pooled panel scratch. `fbuf` holds F (tau * A_trailing^T * V,
        // one column per reflector, leading dimension n - k0 per panel);
        // `yrow` receives the just-in-time pivot row update.
        let mut fbuf = workspace::take(n * NB);
        let mut yrow = workspace::take(n);
        // Columns whose norm downdate went stale this panel (recomputed
        // after the trailing GEMM).
        let mut stale: Vec<usize> = Vec::new();

        let mut k0 = 0;
        let mut done = false;
        while k0 < kmax && !done {
            let nb = NB.min(kmax - k0);
            let fld = n - k0; // F leading dimension this panel
            let fslice = &mut fbuf[..fld * nb];
            stale.clear();
            let mut jb = 0; // reflectors completed this panel

            for j in 0..nb {
                let k = k0 + j;
                // Pivot: residual column with the largest norm (squaring
                // is monotone, so the comparator picks the same column as
                // the unblocked path up to downdate rounding).
                let (p, &pn2) = norms2[k..]
                    .iter()
                    .enumerate()
                    .max_by(|x, y| x.1.partial_cmp(y.1).expect("NaN column norm"))
                    .expect("non-empty pivot range");
                let p = k + p;
                if k == 0 {
                    first_pivot_norm2 = pn2;
                }
                if pn2 == 0.0 || (tol > 0.0 && k > 0 && pn2 <= tol * tol * first_pivot_norm2) {
                    done = true;
                    break;
                }
                a.swap_cols(k, p);
                norms2.swap(k, p);
                norms2_ref.swap(k, p);
                perm.swap(k, p);
                // F rows travel with their columns.
                if p != k {
                    for jj in 0..j {
                        fslice.swap(jj * fld + (k - k0), jj * fld + (p - k0));
                    }
                }

                // Apply the j pending panel reflectors to the new pivot
                // column: a[k.., k] -= V[k.., 0..j] * F[k - k0, 0..j]^T.
                // Columns k0..k precede column k in the column-major
                // storage, so a split borrows V and the destination
                // disjointly and the gemv accumulates in place.
                if j > 0 {
                    let mut frow = [0.0f64; NB];
                    for (jj, f) in frow[..j].iter_mut().enumerate() {
                        *f = fslice[jj * fld + (k - k0)];
                    }
                    let (head, tail) = a.as_mut_slice().split_at_mut(k * m);
                    let v = MatRef::from_parts(&head[k0 * m + k..], m - k, j, m);
                    gemv(-1.0, v, &frow[..j], 1.0, &mut tail[k..m]);
                }

                let t = make_householder(&mut a.col_mut(k)[k..]);
                tau.push(t);
                rdiag.push(a[(k, k)].abs());
                rank = k + 1;
                jb = j + 1;

                // F(:, j) = tau * A(k..m, k+1..n)^T * v with v[0] := 1,
                // then the incremental correction through the previous F
                // columns (LAPACK's auxv step) so F reflects the panel
                // updates that have not yet been applied to A.
                let akk = a[(k, k)];
                a.col_mut(k)[k] = 1.0;
                {
                    let (fdone, frest) = fslice.split_at_mut(j * fld);
                    let fcol = &mut frest[..fld];
                    if k + 1 < n {
                        let at = a.submatrix(k..m, k + 1..n);
                        gemv_t(t, at, &a.col(k)[k..m], 0.0, &mut fcol[j + 1..]);
                    }
                    for f in fcol[..=j].iter_mut() {
                        *f = 0.0;
                    }
                    if j > 0 {
                        let mut auxv = [0.0f64; NB];
                        let ap = a.submatrix(k..m, k0..k);
                        gemv_t(-t, ap, &a.col(k)[k..m], 0.0, &mut auxv[..j]);
                        let fview = MatRef::from_parts(fdone, fld, j, fld);
                        gemv(1.0, fview, &auxv[..j], 1.0, fcol);
                    }
                }
                // Update the pivot row across the trailing columns so the
                // R row and the norm downdates below see current values:
                // A[k, k+1..n] -= A[k, k0..=k] * F[(k+1..n) - k0, 0..=j]^T.
                // The diagonal entry participates as the reflector's
                // implicit unit head (A[k, k] is still 1 here, as in
                // LAPACK, which restores `akk` only after this update).
                if k + 1 < n {
                    let mut arow = [0.0f64; NB];
                    for (jj, v) in arow[..=j].iter_mut().enumerate() {
                        *v = a[(k, k0 + jj)];
                    }
                    let f2 = MatRef::from_parts(&fslice[j + 1..], fld - j - 1, j + 1, fld);
                    gemv(1.0, f2, &arow[..=j], 0.0, &mut yrow[..n - k - 1]);
                    for (c, y) in (k + 1..n).zip(&yrow[..n - k - 1]) {
                        a[(k, c)] -= *y;
                    }
                }
                a.col_mut(k)[k] = akk;

                // Norm downdate in the squared domain — the same heuristic
                // as the unblocked path (`d * ratio^2 <= 1e-14` with
                // `d * ratio^2 = (norms^2 - a^2) / norms_ref^2`), one FMA
                // and one compare per column. Untrustworthy columns are
                // deferred (their below-panel rows are not yet updated).
                for j2 in k + 1..n {
                    if norms2[j2] == 0.0 {
                        continue;
                    }
                    let akj = a[(k, j2)];
                    let down = norms2[j2] - akj * akj;
                    if down <= 1e-14 * norms2_ref[j2] {
                        stale.push(j2);
                    } else {
                        norms2[j2] = down;
                    }
                }
                if !stale.is_empty() {
                    break; // finish the panel now, recompute after the GEMM
                }
            }

            // Deferred trailing update for the panel's jb reflectors:
            // A[k0+jb.., k0+jb..] -= V[k0+jb.., panel] * F[jb.., 0..jb]^T.
            let kend = k0 + jb;
            if jb > 0 && kend < n && kend < m {
                let (head, tail) = a.as_mut_slice().split_at_mut(kend * m);
                let v = MatRef::from_parts(&head[k0 * m + kend..], m - kend, jb, m);
                let c = MatMut::from_parts(&mut tail[kend..], m - kend, n - kend, m);
                let f2 = MatRef::from_parts(&fslice[jb..], fld - jb, jb, fld);
                gemm(-1.0, v, Trans::No, f2, Trans::Yes, 1.0, c);
            }
            for &j2 in &stale {
                let c = &a.col(j2)[kend..];
                norms2[j2] = crate::blas1::dot(c, c);
                norms2_ref[j2] = norms2[j2];
            }
            if jb == 0 {
                break; // truncated on the panel's first pivot
            }
            k0 = kend;
        }
        ColPivQr { qr: a, tau, perm, rank, rdiag }
    }

    /// The truncation rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Original column indices in pivoted order; the first [`rank`](Self::rank)
    /// entries are the selected (skeleton) columns.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// `|R[k,k]|` singular-value estimates for the accepted steps.
    pub fn rdiag(&self) -> &[f64] {
        &self.rdiag
    }

    /// Householder scalars of the accepted reflectors (one per pivot step;
    /// exposed so callers can apply `Q`/`Qᵀ` if they need the orthogonal
    /// factor explicitly).
    pub fn tau(&self) -> &[f64] {
        &self.tau
    }

    /// `R11` (rank x rank upper triangular block).
    pub fn r11(&self) -> Mat {
        let s = self.rank;
        Mat::from_fn(s, s, |i, j| if i <= j { self.qr[(i, j)] } else { 0.0 })
    }

    /// `R12` (rank x (n - rank) block).
    pub fn r12(&self) -> Mat {
        let s = self.rank;
        let n = self.qr.ncols();
        Mat::from_fn(s, n - s, |i, j| self.qr[(i, j + s)])
    }

    /// Solves `R11 X = R12`, the interpolation coefficients of the
    /// non-skeleton columns in terms of the skeleton columns. The result
    /// is backed by pooled storage; recycle it with
    /// [`workspace::recycle_mat`] when it does not escape the hot path.
    pub fn interp_coeffs(&self) -> Mat {
        let s = self.rank;
        let n = self.qr.ncols();
        let mut t = workspace::take_mat_detached(s, n - s);
        for j in 0..n - s {
            for i in 0..s {
                t[(i, j)] = self.qr[(i, j + s)];
            }
        }
        if s > 0 {
            crate::tri::solve_upper_mat_inplace(self.qr.submatrix(0..s, 0..s), t.rb_mut());
        }
        t
    }

    /// Consumes the factorization, yielding the packed `QR` storage (so
    /// hot paths can hand the sampled block's buffer back to the pool).
    pub fn into_matrix(self) -> Mat {
        self.qr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    /// Random matrix of numerical rank `r` (plus tiny noise).
    fn low_rank(m: usize, n: usize, r: usize, noise: f64, seed: u64) -> Mat {
        let u = rand_mat(m, r, seed);
        let v = rand_mat(r, n, seed + 1);
        let mut a = matmul(&u, &v);
        let e = rand_mat(m, n, seed + 2);
        for j in 0..n {
            for i in 0..m {
                a[(i, j)] += noise * e[(i, j)];
            }
        }
        a
    }

    #[test]
    fn full_rank_no_truncation() {
        let a = rand_mat(8, 6, 3);
        let f = ColPivQr::factor_truncated(a, 1e-12, usize::MAX);
        assert_eq!(f.rank(), 6);
        // rdiag non-increasing (rank-revealing property).
        for w in f.rdiag().windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-12));
        }
    }

    #[test]
    fn detects_numerical_rank() {
        let a = low_rank(40, 30, 5, 1e-12, 7);
        let f = ColPivQr::factor_truncated(a, 1e-8, usize::MAX);
        assert_eq!(f.rank(), 5);
    }

    #[test]
    fn max_rank_caps() {
        let a = rand_mat(20, 20, 11);
        let f = ColPivQr::factor_truncated(a, 0.0, 7);
        assert_eq!(f.rank(), 7);
    }

    #[test]
    fn perm_is_permutation() {
        let a = low_rank(15, 12, 4, 1e-13, 5);
        let f = ColPivQr::factor_truncated(a, 1e-9, usize::MAX);
        let mut seen = [false; 12];
        for &p in f.perm() {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn interp_coeffs_reconstruct_columns() {
        // A = A[:, skeleton] * [I, T] P^T up to the truncation tolerance.
        let a = low_rank(30, 18, 6, 0.0, 13);
        let f = ColPivQr::factor_truncated(a.clone(), 1e-10, usize::MAX);
        let s = f.rank();
        assert_eq!(s, 6);
        let skel: Vec<usize> = f.perm()[..s].to_vec();
        let ask = a.select_cols(&skel);
        let t = f.interp_coeffs();
        // Non-skeleton column j (pivot position s + jj) ~= A_skel * t[:, jj].
        let anorm = a.norm_max();
        for jj in 0..18 - s {
            let orig = f.perm()[s + jj];
            let mut rec = vec![0.0; 30];
            let tcol: Vec<f64> = (0..s).map(|i| t[(i, jj)]).collect();
            crate::blas2::gemv(1.0, ask.rb(), &tcol, 0.0, &mut rec);
            for i in 0..30 {
                assert!(
                    (rec[i] - a[(i, orig)]).abs() < 1e-8 * anorm,
                    "col {orig} row {i}: {} vs {}",
                    rec[i],
                    a[(i, orig)]
                );
            }
        }
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let a = Mat::zeros(6, 4);
        let f = ColPivQr::factor_truncated(a, 1e-10, usize::MAX);
        assert_eq!(f.rank(), 0);
    }

    // ------------------------- blocked path --------------------------

    /// Matrix with well-separated singular values `base^k` (known pivot
    /// order up to rounding), dense mixing from random orthogonal-ish
    /// factors.
    fn decaying_spectrum(m: usize, n: usize, base: f64, seed: u64) -> Mat {
        let r = m.min(n);
        let u = rand_mat(m, r, seed);
        let v = rand_mat(r, n, seed + 1);
        let mut a = Mat::zeros(m, n);
        for k in 0..r {
            let s = base.powi(k as i32);
            for j in 0..n {
                for i in 0..m {
                    a[(i, j)] += s * u[(i, k)] * v[(k, j)];
                }
            }
        }
        a
    }

    #[test]
    fn blocked_matches_unblocked_pivots_and_ranks() {
        for &(m, n, seed) in &[(96, 80, 1u64), (128, 128, 2), (80, 120, 3), (200, 64, 4)] {
            let a = decaying_spectrum(m, n, 0.82, seed);
            let fb = ColPivQr::factor_truncated_blocked(a.clone(), 1e-8, usize::MAX);
            let fu = ColPivQr::factor_truncated_unblocked(a, 1e-8, usize::MAX);
            assert_eq!(fb.rank(), fu.rank(), "rank mismatch at {m}x{n}");
            assert_eq!(
                &fb.perm()[..fb.rank()],
                &fu.perm()[..fu.rank()],
                "pivot sequence mismatch at {m}x{n}"
            );
            for (b, u) in fb.rdiag().iter().zip(fu.rdiag()) {
                assert!((b - u).abs() <= 1e-10 * fu.rdiag()[0], "rdiag drift: {b} vs {u}");
            }
        }
    }

    #[test]
    fn blocked_rdiag_monotone() {
        let a = decaying_spectrum(150, 130, 0.9, 11);
        let f = ColPivQr::factor_truncated_blocked(a, 0.0, usize::MAX);
        for w in f.rdiag().windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-10), "rdiag not monotone: {} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn blocked_reconstructs_within_tol() {
        // A ~= A[:, skeleton] * [I, T] at the truncation tolerance.
        let tol = 1e-6;
        let a = decaying_spectrum(120, 100, 0.5, 21);
        let f = ColPivQr::factor_truncated_blocked(a.clone(), tol, usize::MAX);
        let s = f.rank();
        assert!(s > 0 && s < 100, "expected truncation, got rank {s}");
        let skel: Vec<usize> = f.perm()[..s].to_vec();
        let ask = a.select_cols(&skel);
        let t = f.interp_coeffs();
        let anorm = a.norm_max();
        for jj in 0..100 - s {
            let orig = f.perm()[s + jj];
            let mut rec = vec![0.0; 120];
            let tcol: Vec<f64> = (0..s).map(|i| t[(i, jj)]).collect();
            crate::blas2::gemv(1.0, ask.rb(), &tcol, 0.0, &mut rec);
            for i in 0..120 {
                assert!(
                    (rec[i] - a[(i, orig)]).abs() < 100.0 * tol * anorm,
                    "col {orig} row {i}: {} vs {}",
                    rec[i],
                    a[(i, orig)]
                );
            }
        }
    }

    #[test]
    fn blocked_full_factor_matches_unblocked_r() {
        // With identical pivot sequences, R must agree to rounding on the
        // accepted rows (the stored below-diagonal reflectors may differ
        // in rounding only).
        let a = decaying_spectrum(64, 64, 0.85, 31);
        let fb = ColPivQr::factor_truncated_blocked(a.clone(), 0.0, usize::MAX);
        let fu = ColPivQr::factor_truncated_unblocked(a, 0.0, usize::MAX);
        assert_eq!(fb.perm(), fu.perm());
        let rb = fb.r11();
        let ru = fu.r11();
        let scale = fu.rdiag()[0];
        for j in 0..fb.rank() {
            for i in 0..=j {
                assert!(
                    (rb[(i, j)] - ru[(i, j)]).abs() <= 1e-10 * scale,
                    "R({i},{j}): {} vs {}",
                    rb[(i, j)],
                    ru[(i, j)]
                );
            }
        }
    }

    #[test]
    fn blocked_max_rank_caps_mid_panel() {
        // max_rank not a multiple of NB exercises the short final panel.
        let a = rand_mat(100, 90, 41);
        let f = ColPivQr::factor_truncated_blocked(a, 0.0, 50);
        assert_eq!(f.rank(), 50);
    }

    #[test]
    fn blocked_low_rank_truncates_mid_panel() {
        // Numerical rank far below the panel width: the first panel must
        // stop early and still leave a consistent partial factorization.
        let a = low_rank(90, 70, 9, 1e-13, 51);
        let fb = ColPivQr::factor_truncated_blocked(a.clone(), 1e-8, usize::MAX);
        let fu = ColPivQr::factor_truncated_unblocked(a, 1e-8, usize::MAX);
        assert_eq!(fb.rank(), 9);
        assert_eq!(&fb.perm()[..9], &fu.perm()[..9]);
    }

    #[test]
    fn blocked_zero_matrix_rank_zero() {
        let f = ColPivQr::factor_truncated_blocked(Mat::zeros(64, 64), 1e-10, usize::MAX);
        assert_eq!(f.rank(), 0);
    }

    #[test]
    fn dispatch_threshold_and_counter() {
        let before = blocked_factor_count();
        // Large enough factorization goes blocked by default.
        let _ = ColPivQr::factor_truncated(rand_mat(64, 64, 61), 0.0, usize::MAX);
        if blocked_active() {
            assert!(blocked_factor_count() > before, "blocked path not taken");
        }
        // Tiny factorization stays on the BLAS-2 loop.
        let mid = blocked_factor_count();
        let _ = ColPivQr::factor_truncated(rand_mat(10, 10, 62), 0.0, usize::MAX);
        assert_eq!(blocked_factor_count(), mid);
    }
}
