//! Column-pivoted, rank-revealing QR (LAPACK `GEQP3`-style) with early
//! truncation — the engine behind the interpolative decomposition.
//!
//! The paper selects the skeleton rank `s` such that
//! `sigma_{s+1}(K_{S'alpha}) / sigma_1 < tau`, with the singular values
//! estimated by the diagonal of the rank-revealing QR (§II-A). This module
//! implements exactly that truncation rule.

use crate::blas1::nrm2;
use crate::mat::{Mat, MatMut};
use crate::qr::{apply_householder_left, make_householder};

/// A truncated column-pivoted QR factorization `A P = Q R`.
#[derive(Clone, Debug)]
pub struct ColPivQr {
    /// Packed reflectors below the diagonal, `R` on and above (columns in
    /// pivoted order).
    qr: Mat,
    tau: Vec<f64>,
    /// `perm[k]` is the original column index in pivot position `k`.
    perm: Vec<usize>,
    /// Truncation rank (number of accepted pivot columns).
    rank: usize,
    /// `|R[k,k]|` for each accepted step, monotonically non-increasing in
    /// exact arithmetic; used as singular-value estimates.
    rdiag: Vec<f64>,
}

impl ColPivQr {
    /// Factorizes `a` (consumed), truncating at relative tolerance `tol`
    /// and at `max_rank` columns.
    ///
    /// The rank is the smallest `s` with `|R[s,s]| <= tol * |R[0,0]|`
    /// (clamped to `max_rank` and `min(m, n)`). `tol == 0` disables the
    /// tolerance-based truncation.
    pub fn factor_truncated(mut a: Mat, tol: f64, max_rank: usize) -> Self {
        let m = a.nrows();
        let n = a.ncols();
        let kmax = m.min(n).min(max_rank);
        let mut perm: Vec<usize> = (0..n).collect();
        let mut tau = Vec::with_capacity(kmax);
        let mut rdiag = Vec::with_capacity(kmax);

        // Residual column norms, downdated incrementally and recomputed when
        // cancellation makes the downdate untrustworthy (LAPACK heuristic).
        let mut norms: Vec<f64> = (0..n).map(|j| nrm2(a.col(j))).collect();
        let mut norms_ref = norms.clone();
        let mut first_pivot_norm = 0.0f64;

        let mut rank = 0;
        for k in 0..kmax {
            // Pivot: residual column with the largest norm.
            let (p, &pn) = norms[k..]
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).expect("NaN column norm"))
                .expect("non-empty pivot range");
            let p = k + p;
            if k == 0 {
                first_pivot_norm = pn;
            }
            // Truncation rule: sigma_{k+1}/sigma_1 estimated by pivot norms.
            if pn == 0.0 || (tol > 0.0 && k > 0 && pn <= tol * first_pivot_norm) {
                break;
            }
            a.swap_cols(k, p);
            norms.swap(k, p);
            norms_ref.swap(k, p);
            perm.swap(k, p);

            let t = {
                let col = &mut a.col_mut(k)[k..];
                make_householder(col)
            };
            tau.push(t);
            rdiag.push(a[(k, k)].abs());
            rank = k + 1;

            if k + 1 < n && t != 0.0 {
                let (head, tail) = a.as_mut_slice().split_at_mut((k + 1) * m);
                let v = head[k * m + k + 1..(k + 1) * m].to_vec();
                let trailing = MatMut::from_parts(&mut tail[k..], m - k, n - k - 1, m);
                apply_householder_left(&v, t, trailing);
            }
            // Downdate residual norms of the trailing columns.
            for j in k + 1..n {
                if norms[j] == 0.0 {
                    continue;
                }
                let r = a[(k, j)].abs() / norms[j];
                let d = (1.0 - r * r).max(0.0);
                // If the downdate lost too much accuracy, recompute exactly.
                let ratio = norms[j] / norms_ref[j];
                if d * ratio * ratio <= 1e-14 {
                    norms[j] = nrm2(&a.col(j)[k + 1..]);
                    norms_ref[j] = norms[j];
                } else {
                    norms[j] *= d.sqrt();
                }
            }
        }
        ColPivQr { qr: a, tau, perm, rank, rdiag }
    }

    /// The truncation rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Original column indices in pivoted order; the first [`rank`](Self::rank)
    /// entries are the selected (skeleton) columns.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// `|R[k,k]|` singular-value estimates for the accepted steps.
    pub fn rdiag(&self) -> &[f64] {
        &self.rdiag
    }

    /// Householder scalars of the accepted reflectors (one per pivot step;
    /// exposed so callers can apply `Q`/`Qᵀ` if they need the orthogonal
    /// factor explicitly).
    pub fn tau(&self) -> &[f64] {
        &self.tau
    }

    /// `R11` (rank x rank upper triangular block).
    pub fn r11(&self) -> Mat {
        let s = self.rank;
        Mat::from_fn(s, s, |i, j| if i <= j { self.qr[(i, j)] } else { 0.0 })
    }

    /// `R12` (rank x (n - rank) block).
    pub fn r12(&self) -> Mat {
        let s = self.rank;
        let n = self.qr.ncols();
        Mat::from_fn(s, n - s, |i, j| self.qr[(i, j + s)])
    }

    /// Solves `R11 X = R12`, the interpolation coefficients of the
    /// non-skeleton columns in terms of the skeleton columns.
    pub fn interp_coeffs(&self) -> Mat {
        let s = self.rank;
        let mut t = self.r12();
        if s > 0 {
            crate::tri::solve_upper_mat_inplace(self.qr.submatrix(0..s, 0..s), t.rb_mut());
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    /// Random matrix of numerical rank `r` (plus tiny noise).
    fn low_rank(m: usize, n: usize, r: usize, noise: f64, seed: u64) -> Mat {
        let u = rand_mat(m, r, seed);
        let v = rand_mat(r, n, seed + 1);
        let mut a = matmul(&u, &v);
        let e = rand_mat(m, n, seed + 2);
        for j in 0..n {
            for i in 0..m {
                a[(i, j)] += noise * e[(i, j)];
            }
        }
        a
    }

    #[test]
    fn full_rank_no_truncation() {
        let a = rand_mat(8, 6, 3);
        let f = ColPivQr::factor_truncated(a, 1e-12, usize::MAX);
        assert_eq!(f.rank(), 6);
        // rdiag non-increasing (rank-revealing property).
        for w in f.rdiag().windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-12));
        }
    }

    #[test]
    fn detects_numerical_rank() {
        let a = low_rank(40, 30, 5, 1e-12, 7);
        let f = ColPivQr::factor_truncated(a, 1e-8, usize::MAX);
        assert_eq!(f.rank(), 5);
    }

    #[test]
    fn max_rank_caps() {
        let a = rand_mat(20, 20, 11);
        let f = ColPivQr::factor_truncated(a, 0.0, 7);
        assert_eq!(f.rank(), 7);
    }

    #[test]
    fn perm_is_permutation() {
        let a = low_rank(15, 12, 4, 1e-13, 5);
        let f = ColPivQr::factor_truncated(a, 1e-9, usize::MAX);
        let mut seen = [false; 12];
        for &p in f.perm() {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn interp_coeffs_reconstruct_columns() {
        // A = A[:, skeleton] * [I, T] P^T up to the truncation tolerance.
        let a = low_rank(30, 18, 6, 0.0, 13);
        let f = ColPivQr::factor_truncated(a.clone(), 1e-10, usize::MAX);
        let s = f.rank();
        assert_eq!(s, 6);
        let skel: Vec<usize> = f.perm()[..s].to_vec();
        let ask = a.select_cols(&skel);
        let t = f.interp_coeffs();
        // Non-skeleton column j (pivot position s + jj) ~= A_skel * t[:, jj].
        let anorm = a.norm_max();
        for jj in 0..18 - s {
            let orig = f.perm()[s + jj];
            let mut rec = vec![0.0; 30];
            let tcol: Vec<f64> = (0..s).map(|i| t[(i, jj)]).collect();
            crate::blas2::gemv(1.0, ask.rb(), &tcol, 0.0, &mut rec);
            for i in 0..30 {
                assert!(
                    (rec[i] - a[(i, orig)]).abs() < 1e-8 * anorm,
                    "col {orig} row {i}: {} vs {}",
                    rec[i],
                    a[(i, orig)]
                );
            }
        }
    }

    #[test]
    fn zero_matrix_rank_zero() {
        let a = Mat::zeros(6, 4);
        let f = ColPivQr::factor_truncated(a, 1e-10, usize::MAX);
        assert_eq!(f.rank(), 0);
    }
}
