//! LU factorization with partial pivoting (LAPACK `GETRF`/`GETRS` analogue).
//!
//! The factorization also records a pivot-growth diagnostic used by the
//! solver's numerical-stability detector (paper §III): when the regularizer
//! `λ` is small relative to `σ_min` of a diagonal block, the block becomes
//! ill-conditioned, which manifests as a tiny relative pivot here.

use crate::blas1::iamax;
use crate::error::LaError;
use crate::mat::{Mat, MatMut};

/// A partial-pivoted LU factorization `P A = L U` stored packed in one matrix.
#[derive(Clone, Debug)]
pub struct Lu {
    /// Packed factors: unit-lower `L` below the diagonal, `U` on and above.
    lu: Mat,
    /// Row swap at step `k`: rows `k` and `piv[k]` were exchanged.
    piv: Vec<usize>,
    /// `min_k |u_kk| / max_ij |a_ij|` — a cheap conditioning proxy.
    min_pivot_ratio: f64,
}

/// Panel width of the blocked factorization (LAPACK-style `nb`).
const LU_BLOCK: usize = 48;
/// Below this size the unblocked kernel wins.
const LU_BLOCK_THRESHOLD: usize = 96;

impl Lu {
    /// Factorizes `a` (consumed) with partial pivoting.
    ///
    /// Uses a right-looking blocked algorithm (panel factorization +
    /// GEMM trailing update) for matrices above a size threshold, the
    /// straight unblocked kernel otherwise; both produce identical
    /// factors.
    ///
    /// Returns [`LaError::Singular`] when an exactly-zero pivot is hit; the
    /// near-singular case is *not* an error — inspect
    /// [`Lu::min_pivot_ratio`] to detect it (paper §III stability check).
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor(a: Mat) -> Result<Self, LaError> {
        if a.nrows() >= LU_BLOCK_THRESHOLD {
            Self::factor_blocked(a)
        } else {
            Self::factor_unblocked(a)
        }
    }

    /// The unblocked right-looking kernel (rank-1 trailing updates).
    pub fn factor_unblocked(mut a: Mat) -> Result<Self, LaError> {
        let n = a.nrows();
        assert_eq!(a.ncols(), n, "LU requires a square matrix");
        let amax = a.norm_max().max(f64::MIN_POSITIVE);
        let mut piv = vec![0usize; n];
        let mut min_pivot_ratio = f64::INFINITY;
        if n == 0 {
            return Ok(Lu { lu: a, piv, min_pivot_ratio: 1.0 });
        }
        for k in 0..n {
            // Pivot search in column k, rows k..n.
            let colk = &a.col(k)[k..];
            let p = k + iamax(colk).expect("non-empty pivot column");
            piv[k] = p;
            a.swap_rows(k, p);
            let pivot = a[(k, k)];
            if pivot == 0.0 {
                return Err(LaError::Singular { step: k });
            }
            min_pivot_ratio = min_pivot_ratio.min(pivot.abs() / amax);
            // Scale multipliers.
            let inv = 1.0 / pivot;
            for i in k + 1..n {
                a[(i, k)] *= inv;
            }
            // Trailing rank-1 update: A[k+1.., k+1..] -= l * u^T, column-wise.
            let (head, tail) = a.as_mut_slice().split_at_mut((k + 1) * n);
            let lcol = &head[k * n + k + 1..(k + 1) * n];
            let trailing = MatMut::from_parts(tail, n, n - k - 1, n);
            rank1_trailing(lcol, k, trailing);
        }
        Ok(Lu { lu: a, piv, min_pivot_ratio })
    }

    /// Right-looking blocked factorization (`GETRF`-style): factor an
    /// `n x nb` panel with the unblocked kernel, swap the pivot rows
    /// across the full width, solve the `U₁₂` strip with a unit-lower
    /// TRSM, and update the trailing block with one GEMM.
    pub fn factor_blocked(mut a: Mat) -> Result<Self, LaError> {
        let n = a.nrows();
        assert_eq!(a.ncols(), n, "LU requires a square matrix");
        let amax = a.norm_max().max(f64::MIN_POSITIVE);
        let mut piv = vec![0usize; n];
        let mut min_pivot_ratio = f64::INFINITY;

        for k0 in (0..n).step_by(LU_BLOCK) {
            let nb = LU_BLOCK.min(n - k0);
            let k1 = k0 + nb;
            // --- Panel factorization on A[k0.., k0..k1] (unblocked). ---
            for k in k0..k1 {
                let colk = &a.col(k)[k..];
                let p = k + iamax(colk).expect("non-empty pivot column");
                piv[k] = p;
                // Swap full rows: applies the permutation to the left
                // factors and the not-yet-updated right part alike.
                a.swap_rows(k, p);
                let pivot = a[(k, k)];
                if pivot == 0.0 {
                    return Err(LaError::Singular { step: k });
                }
                min_pivot_ratio = min_pivot_ratio.min(pivot.abs() / amax);
                let inv = 1.0 / pivot;
                for i in k + 1..n {
                    a[(i, k)] *= inv;
                }
                // Rank-1 update restricted to the panel columns.
                for j in k + 1..k1 {
                    let ukj = a[(k, j)];
                    if ukj != 0.0 {
                        let (lo, hi) = a.as_mut_slice().split_at_mut(j * n);
                        let lcol = &lo[k * n + k + 1..(k + 1) * n];
                        crate::blas1::axpy(-ukj, lcol, &mut hi[k + 1..n]);
                    }
                }
            }
            if k1 == n {
                break;
            }
            // --- U12 = L11^{-1} A12 (unit-lower TRSM on the panel). ---
            let (left, right) = a.as_mut_slice().split_at_mut(k1 * n);
            let l11 = crate::mat::MatRef::from_parts(&left[k0 * n + k0..], nb, nb, n);
            let mut a12 = MatMut::from_parts(&mut right[k0..], nb, n - k1, n);
            crate::tri::solve_lower_mat_inplace(l11, true, a12.rb_mut());
            // --- Trailing update A22 -= L21 * U12 (GEMM). ---
            let l21 = crate::mat::MatRef::from_parts(&left[k0 * n + k1..], n - k1, nb, n);
            // U12 and A22 are different row ranges of the same (strided)
            // columns, which a column-stride view cannot split disjointly;
            // copy the small nb x (n-k1) U12 strip out instead.
            let u12_copy = crate::mat::MatRef::from_parts(&right[k0..], nb, n - k1, n).to_mat();
            let a22 = MatMut::from_parts(&mut right[k1..], n - k1, n - k1, n);
            crate::gemm::gemm(
                -1.0,
                l21,
                crate::gemm::Trans::No,
                u12_copy.rb(),
                crate::gemm::Trans::No,
                1.0,
                a22,
            );
        }
        if n == 0 {
            min_pivot_ratio = 1.0;
        }
        Ok(Lu { lu: a, piv, min_pivot_ratio })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// `min_k |u_kk| / max|A|`: small values signal near-singularity.
    pub fn min_pivot_ratio(&self) -> f64 {
        self.min_pivot_ratio
    }

    /// Solves `A x = b` in place.
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_inplace(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "LU solve: rhs length mismatch");
        for k in 0..n {
            b.swap(k, self.piv[k]);
        }
        crate::tri::solve_lower_inplace(self.lu.rb(), true, b);
        crate::tri::solve_upper_inplace(self.lu.rb(), b);
    }

    /// Solves `A X = B` in place for a multi-column right-hand side.
    pub fn solve_mat_inplace(&self, b: &mut Mat) {
        assert_eq!(b.nrows(), self.dim(), "LU solve: rhs rows mismatch");
        for j in 0..b.ncols() {
            self.solve_inplace(b.col_mut(j));
        }
    }

    /// Solves `A x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_inplace(&mut x);
        x
    }

    /// The determinant (product of pivots, sign-adjusted).
    pub fn det(&self) -> f64 {
        let n = self.dim();
        let mut d = 1.0;
        for k in 0..n {
            d *= self.lu[(k, k)];
            if self.piv[k] != k {
                d = -d;
            }
        }
        d
    }

    /// `log |det A|` — overflow-free (sums log-pivots instead of
    /// multiplying them).
    pub fn log_abs_det(&self) -> f64 {
        (0..self.dim()).map(|k| self.lu[(k, k)].abs().ln()).sum()
    }

    /// Sign of the determinant (`±1`, or `0` if a pivot is exactly zero —
    /// impossible for a successfully constructed factorization).
    pub fn det_sign(&self) -> f64 {
        let n = self.dim();
        let mut s = 1.0f64;
        for k in 0..n {
            if self.lu[(k, k)] < 0.0 {
                s = -s;
            }
            if self.piv[k] != k {
                s = -s;
            }
        }
        s
    }
}

/// `trailing[i, j] -= lcol[i] * urow[j]` where `urow` is row `k` of the
/// trailing columns (first row of each trailing column block).
fn rank1_trailing(lcol: &[f64], k: usize, mut trailing: MatMut<'_>) {
    let m = lcol.len();
    for j in 0..trailing.ncols() {
        let col = trailing.col_mut(j);
        let ukj = col[k];
        if ukj != 0.0 {
            crate::blas1::axpy(-ukj, lcol, &mut col[k + 1..k + 1 + m]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_mat(n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(n, n, |i, j| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            r + if i == j { n as f64 * 0.1 } else { 0.0 }
        })
    }

    #[test]
    fn lu_solve_recovers_solution() {
        for n in [1, 2, 5, 17, 64] {
            let a = test_mat(n, n as u64);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin() + 0.1).collect();
            let mut b = vec![0.0; n];
            crate::blas2::gemv(1.0, a.rb(), &x_true, 0.0, &mut b);
            let f = Lu::factor(a).unwrap();
            let x = f.solve(&b);
            for (u, v) in x.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-9, "n={n}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn lu_reconstruction() {
        let n = 12;
        let a = test_mat(n, 7);
        let f = Lu::factor(a.clone()).unwrap();
        // Reconstruct PA = LU and compare against row-permuted A.
        let mut pa = a.clone();
        for k in 0..n {
            pa.swap_rows(k, f.piv[k]);
        }
        // sum over k of L[i,k] U[k,j], with L unit lower triangular.
        let rec = Mat::from_fn(n, n, |i, j| {
            (0..n)
                .map(|k| {
                    let l = if k < i {
                        f.lu[(i, k)]
                    } else if k == i {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if k <= j { f.lu[(k, j)] } else { 0.0 };
                    l * u
                })
                .sum()
        });
        for j in 0..n {
            for i in 0..n {
                assert!((rec[(i, j)] - pa[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn singular_detected() {
        let mut a = Mat::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 1.0;
        // Third row/col all zero -> exactly singular.
        match Lu::factor(a) {
            Err(LaError::Singular { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn near_singular_flagged_by_pivot_ratio() {
        let mut a = Mat::identity(4);
        a[(3, 3)] = 1e-13;
        let f = Lu::factor(a).unwrap();
        assert!(f.min_pivot_ratio() < 1e-12);
    }

    #[test]
    fn det_of_permutation() {
        // A permutation matrix has determinant +-1.
        let mut a = Mat::zeros(3, 3);
        a[(0, 1)] = 1.0;
        a[(1, 2)] = 1.0;
        a[(2, 0)] = 1.0;
        let f = Lu::factor(a).unwrap();
        assert!((f.det().abs() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn blocked_matches_unblocked() {
        for n in [97, 130, 200, 257] {
            let a = test_mat(n, n as u64 * 3 + 1);
            let fb = Lu::factor_blocked(a.clone()).unwrap();
            let fu = Lu::factor_unblocked(a.clone()).unwrap();
            // Identical pivots and packed factors (same algorithm, same
            // elimination order).
            assert_eq!(fb.piv, fu.piv, "n={n}: pivot mismatch");
            let mut max_diff = 0.0f64;
            for (x, y) in fb.lu.as_slice().iter().zip(fu.lu.as_slice()) {
                max_diff = max_diff.max((x - y).abs());
            }
            assert!(max_diff < 1e-9 * fu.lu.norm_max(), "n={n}: factors differ {max_diff}");
            // And solves agree with the true solution.
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
            let mut b = vec![0.0; n];
            crate::blas2::gemv(1.0, a.rb(), &x_true, 0.0, &mut b);
            let xb = fb.solve(&b);
            for (u, v) in xb.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn blocked_boundary_sizes() {
        // Exactly one block, one block plus one column, threshold edges.
        for n in [48, 49, 95, 96] {
            let a = test_mat(n, 77 + n as u64);
            let f = Lu::factor_blocked(a.clone()).unwrap();
            let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
            let mut b = vec![0.0; n];
            crate::blas2::gemv(1.0, a.rb(), &x_true, 0.0, &mut b);
            let x = f.solve(&b);
            for (u, v) in x.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn log_abs_det_matches_det() {
        let a = test_mat(9, 13);
        let f = Lu::factor(a).unwrap();
        let d = f.det();
        assert!((f.log_abs_det() - d.abs().ln()).abs() < 1e-10);
        assert_eq!(f.det_sign(), d.signum());
    }

    #[test]
    fn log_det_no_overflow() {
        // det would overflow f64; log det must not.
        let n = 400;
        let a = Mat::from_fn(n, n, |i, j| if i == j { 10.0 } else { 0.0 });
        let f = Lu::factor(a).unwrap();
        assert!((f.log_abs_det() - n as f64 * 10f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn multi_rhs_solve() {
        let n = 9;
        let a = test_mat(n, 3);
        let xs = Mat::from_fn(n, 4, |i, j| ((i * 7 + j * 3) as f64 * 0.1).cos());
        let mut b = Mat::zeros(n, 4);
        crate::gemm::gemm(
            1.0,
            a.rb(),
            crate::gemm::Trans::No,
            xs.rb(),
            crate::gemm::Trans::No,
            0.0,
            b.rb_mut(),
        );
        let f = Lu::factor(a).unwrap();
        f.solve_mat_inplace(&mut b);
        for j in 0..4 {
            for i in 0..n {
                assert!((b[(i, j)] - xs[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
