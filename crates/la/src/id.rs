//! Interpolative decomposition (ID), Halko–Martinsson–Tropp style.
//!
//! Given `A` (m x n), find `s` column indices `J` ("skeleton") and an
//! interpolation matrix `P` (s x n) with `A ~= A[:, J] * P`, where `P`
//! restricted to the skeleton columns is the identity. This is the
//! `[alpha~, P] = ID(alpha)` primitive of Algorithm II.1 in the paper.

use crate::cpqr::ColPivQr;
use crate::mat::Mat;
use crate::workspace;

/// The result of an interpolative decomposition.
#[derive(Clone, Debug)]
pub struct InterpDecomp {
    /// Selected column indices (into the original matrix), in pivot order.
    pub skeleton: Vec<usize>,
    /// Interpolation matrix `P` (`rank x n`): `A ~= A[:, skeleton] * P`.
    pub proj: Mat,
    /// `|R[k,k]|` estimates of the leading singular values.
    pub sigma_est: Vec<f64>,
}

impl InterpDecomp {
    /// The approximation rank `s = skeleton.len()`.
    pub fn rank(&self) -> usize {
        self.skeleton.len()
    }

    /// `true` when the ID kept every column (no compression achieved).
    pub fn is_full_rank(&self) -> bool {
        self.rank() == self.proj.ncols()
    }
}

/// Computes a truncated interpolative decomposition of `a`.
///
/// The rank is the smallest `s` such that the RRQR diagonal estimate
/// satisfies `sigma_{s+1}/sigma_1 <= tol` (capped at `max_rank`); this is
/// the paper's adaptive-rank selection rule.
pub fn interp_decomp(a: Mat, tol: f64, max_rank: usize) -> InterpDecomp {
    let n = a.ncols();
    let f = ColPivQr::factor_truncated(a, tol, max_rank);
    let s = f.rank();
    let skeleton = f.perm()[..s].to_vec();
    let t = f.interp_coeffs();
    // Scatter [I, T] back to original column order: proj[:, perm[k]] = e_k
    // for k < s, proj[:, perm[s + j]] = T[:, j].
    let mut proj = Mat::zeros(s, n);
    for k in 0..s {
        proj[(k, f.perm()[k])] = 1.0;
    }
    for j in 0..n - s {
        let dst = f.perm()[s + j];
        for i in 0..s {
            proj[(i, dst)] = t[(i, j)];
        }
    }
    let sigma_est = f.rdiag().to_vec();
    // The coefficient scratch and the packed QR (which owns the sampled
    // block the caller moved in) are pure hot-path temporaries by now.
    workspace::recycle_mat(t);
    workspace::recycle_mat(f.into_matrix());
    InterpDecomp { skeleton, proj, sigma_est }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, Trans};

    fn rand_mat(m: usize, n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        Mat::from_fn(m, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn reconstruct(a: &Mat, id: &InterpDecomp) -> Mat {
        let ask = a.select_cols(&id.skeleton);
        matmul(&ask, &id.proj)
    }

    #[test]
    fn exact_low_rank_is_recovered() {
        let u = rand_mat(25, 4, 1);
        let v = rand_mat(4, 14, 2);
        let a = matmul(&u, &v);
        let id = interp_decomp(a.clone(), 1e-10, usize::MAX);
        assert_eq!(id.rank(), 4);
        let rec = reconstruct(&a, &id);
        let err = (0..14)
            .flat_map(|j| (0..25).map(move |i| (i, j)))
            .map(|(i, j)| (rec[(i, j)] - a[(i, j)]).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-9 * a.norm_max(), "err = {err}");
    }

    #[test]
    fn skeleton_columns_reproduced_exactly() {
        let a = rand_mat(10, 8, 5);
        let id = interp_decomp(a.clone(), 0.3, usize::MAX);
        let rec = reconstruct(&a, &id);
        for &j in &id.skeleton {
            for i in 0..10 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rank_capped() {
        let a = rand_mat(20, 20, 9);
        let id = interp_decomp(a, 0.0, 6);
        assert_eq!(id.rank(), 6);
        assert!(!id.is_full_rank());
    }

    #[test]
    fn truncated_error_tracks_tolerance() {
        // Build a matrix with geometrically decaying singular values via
        // scaled outer products, then check the relative error after
        // truncation is of the order of the tolerance.
        let m = 40;
        let n = 30;
        let mut a = Mat::zeros(m, n);
        for r in 0..10 {
            let u = rand_mat(m, 1, 100 + r as u64);
            let v = rand_mat(1, n, 200 + r as u64);
            let s = 0.3f64.powi(r);
            for j in 0..n {
                for i in 0..m {
                    a[(i, j)] += s * u[(i, 0)] * v[(0, j)];
                }
            }
        }
        let tol = 1e-4;
        let id = interp_decomp(a.clone(), tol, usize::MAX);
        assert!(id.rank() < 15, "should truncate well before full rank");
        let rec = reconstruct(&a, &id);
        let mut diff = a.clone();
        for j in 0..n {
            for i in 0..m {
                diff[(i, j)] -= rec[(i, j)];
            }
        }
        // Pivoted-QR based ID is weaker than SVD truncation; allow slack.
        assert!(diff.norm_fro() <= 100.0 * tol * a.norm_fro());
    }

    #[test]
    fn proj_identity_on_skeleton() {
        let a = rand_mat(12, 9, 42);
        let id = interp_decomp(a, 0.5, usize::MAX);
        for (k, &j) in id.skeleton.iter().enumerate() {
            for i in 0..id.rank() {
                let want = if i == k { 1.0 } else { 0.0 };
                assert_eq!(id.proj[(i, j)], want);
            }
        }
    }

    #[test]
    fn transpose_form_usable() {
        // The solver uses P^T on the left (eq. 6); sanity-check shapes.
        let a = rand_mat(16, 10, 77);
        let id = interp_decomp(a.clone(), 1e-1, usize::MAX);
        let pt = crate::gemm::matmul_op(&id.proj, Trans::Yes, &id.proj, Trans::No);
        assert_eq!(pt.nrows(), 10);
    }
}
