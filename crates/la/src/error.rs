//! Error types for the dense linear algebra kernels.

use std::fmt;

/// Failure modes of the dense factorizations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaError {
    /// An exactly-zero pivot was encountered at elimination step `step`.
    Singular {
        /// Elimination step at which the zero pivot appeared.
        step: usize,
    },
}

impl fmt::Display for LaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaError::Singular { step } => {
                write!(f, "matrix is singular (zero pivot at elimination step {step})")
            }
        }
    }
}

impl std::error::Error for LaError {}
