//! Level-1 BLAS-style vector kernels.
//!
//! All routines operate on `f64` slices; lengths are checked with asserts so
//! the hot loops themselves compile to straight-line vectorized code.

/// Dot product `x . y`.
///
/// Dispatches to the AVX2+FMA kernel when [`crate::simd::active`] and the
/// vectors are long enough to amortize the horizontal reduction; the scalar
/// body below stays the reference path (and the exact pre-SIMD numerics
/// under `KFDS_SIMD=off`).
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if x.len() >= 8 && crate::simd::active() {
            // SAFETY: active() implies AVX2+FMA; lengths asserted equal.
            return unsafe { crate::simd::dot_avx2(x, y) };
        }
    }
    // Four partial accumulators break the additive dependency chain so LLVM
    // can vectorize and pipeline the reduction.
    let mut acc = [0.0f64; 4];
    let chunks = x.len() / 4;
    for k in 0..chunks {
        let i = 4 * k;
        acc[0] += x[i] * y[i];
        acc[1] += x[i + 1] * y[i + 1];
        acc[2] += x[i + 2] * y[i + 2];
        acc[3] += x[i + 3] * y[i + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in 4 * chunks..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y += alpha * x`.
///
/// Dispatches to the AVX2+FMA kernel when [`crate::simd::active`]; the
/// scalar body stays the reference path under `KFDS_SIMD=off`.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if alpha == 0.0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if x.len() >= 8 && crate::simd::active() {
            // SAFETY: active() implies AVX2+FMA; lengths asserted equal.
            unsafe { crate::simd::axpy_avx2(alpha, x, y) };
            return;
        }
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm with scaling to avoid overflow/underflow.
pub fn nrm2(x: &[f64]) -> f64 {
    let mx = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if mx == 0.0 || !mx.is_finite() {
        return mx;
    }
    // One pass of scaled squares; mx keeps intermediate values in range.
    let mut s = 0.0;
    for &v in x {
        let t = v / mx;
        s += t * t;
    }
    mx * s.sqrt()
}

/// `x *= alpha`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Index of the element with maximum absolute value (first on ties).
///
/// Returns `None` for an empty slice.
pub fn iamax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut bv = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        let a = v.abs();
        if a > bv {
            bv = a;
            best = i;
        }
    }
    Some(best)
}

/// Squared Euclidean norm (no overflow guard; used in hot distance loops).
#[inline]
pub fn nrm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..37).map(|i| i as f64 * 0.5 - 3.0).collect();
        let y: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-10 * naive.abs().max(1.0));
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn nrm2_scaled_no_overflow() {
        let x = [1e200, 1e200];
        let n = nrm2(&x);
        assert!(n.is_finite());
        assert!((n - 1e200 * 2.0f64.sqrt()).abs() / n < 1e-14);
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn iamax_first_max() {
        assert_eq!(iamax(&[1.0, -5.0, 5.0]), Some(1));
        assert_eq!(iamax(&[]), None);
        assert_eq!(iamax(&[0.0]), Some(0));
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0];
        scal(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }
}
