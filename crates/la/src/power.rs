//! Power iteration for spectral estimates.
//!
//! Used to pick the regularizer `λ = c · σ₁(K̃)` in the Figure-5 experiments
//! and to estimate condition numbers for the stability diagnostics (§III).

use crate::blas1::{nrm2, scal};

/// Estimates the largest singular value of a symmetric operator `y = A x`
/// given as a closure, via power iteration.
///
/// `apply(x, y)` must write `A x` into `y`. Returns the estimate after at
/// most `max_iters` iterations or when the estimate changes by less than
/// `rtol` relatively.
pub fn sigma_max<F>(n: usize, mut apply: F, max_iters: usize, rtol: f64) -> f64
where
    F: FnMut(&[f64], &mut [f64]),
{
    if n == 0 {
        return 0.0;
    }
    // Deterministic quasi-random start vector with no special structure.
    let mut x: Vec<f64> = (0..n)
        .map(|i| {
            let t = (i as f64 + 1.0) * 0.754_877_666;
            (t - t.floor()) * 2.0 - 1.0
        })
        .collect();
    let nx = nrm2(&x);
    scal(1.0 / nx, &mut x);
    let mut y = vec![0.0; n];
    let mut est = 0.0f64;
    for _ in 0..max_iters {
        apply(&x, &mut y);
        let ny = nrm2(&y);
        if ny == 0.0 {
            return 0.0;
        }
        let new_est = ny;
        std::mem::swap(&mut x, &mut y);
        scal(1.0 / ny, &mut x);
        if (new_est - est).abs() <= rtol * new_est {
            return new_est;
        }
        est = new_est;
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat;

    #[test]
    fn diagonal_matrix_sigma() {
        let d = [5.0, 3.0, 1.0, 0.5];
        let est = sigma_max(
            4,
            |x, y| {
                for i in 0..4 {
                    y[i] = d[i] * x[i];
                }
            },
            200,
            1e-10,
        );
        assert!((est - 5.0).abs() < 1e-6, "est = {est}");
    }

    #[test]
    fn symmetric_matrix_sigma() {
        // A = Q D Q^T with known top eigenvalue via an explicit small case.
        let a = Mat::from_fn(3, 3, |i, j| if i == j { 2.0 } else { 1.0 });
        // Eigenvalues of 2I + (ones - I) = ones + I: {4, 1, 1}.
        let est = sigma_max(3, |x, y| crate::blas2::gemv(1.0, a.rb(), x, 0.0, y), 500, 1e-12);
        assert!((est - 4.0).abs() < 1e-8, "est = {est}");
    }

    #[test]
    fn zero_operator() {
        let est = sigma_max(5, |_x, y| y.fill(0.0), 10, 1e-8);
        assert_eq!(est, 0.0);
    }
}
