//! Thread-local workspace pool for hot-path scratch buffers.
//!
//! The factorization and solve phases repeatedly allocate short-lived
//! buffers of a small set of recurring shapes (GEMM packing panels, GSKS
//! coordinate pads, per-node right-hand-side temporaries). Allocating them
//! from the global heap on every call costs `malloc`/`free` traffic and —
//! worse on first touch — page faults inside the timed region. This module
//! keeps freed buffers on per-thread free lists bucketed by power-of-two
//! size class, so steady-state hot paths recycle warm memory instead of
//! allocating.
//!
//! Design notes:
//!
//! * **Thread-local**: each pool is `thread_local!`, so takes and returns
//!   are lock-free. A buffer taken on one thread and dropped on another
//!   simply migrates pools; no cross-thread traffic is required because
//!   the rayon workers that run the hot loops are long-lived.
//! * **Initialized storage only**: a pool miss reserves the full class
//!   capacity but memsets only the requested prefix; the first return
//!   zero-extends to the class length once, after which buffers cycle
//!   through the pool fully initialized. A take truncates to the requested
//!   length (no memset on a pool hit); a return restores the class length
//!   with `set_len`, which is sound because those elements were initialized
//!   when the buffer was filed and `f64` is `Copy` (truncation never drops
//!   or deallocates). Buffers are filed by the floor class of their
//!   *capacity*, so detached buffers with odd lengths return to the class
//!   they were taken from.
//! * **Stale contents by default**: [`take`] returns a buffer with
//!   arbitrary (previous-use) contents, which suits consumers that fully
//!   overwrite it (GEMM packing, GSKS pads). [`take_zeroed`] zero-fills
//!   for consumers that accumulate.
//!
//! The [`hits`]/[`misses`] counters are process-global and let tests assert
//! that steady-state factorize/solve allocate nothing: a second run of the
//! same workload must be all hits.

use crate::mat::{Mat, MatMut, MatRef};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

/// Smallest pooled class: `2^MIN_CLASS_LOG2` elements.
const MIN_CLASS_LOG2: u32 = 5;
/// Largest pooled class: `2^MAX_CLASS_LOG2` elements (16 Mi doubles,
/// 128 MiB). Larger requests fall through to plain allocation.
const MAX_CLASS_LOG2: u32 = 24;
const NUM_CLASSES: usize = (MAX_CLASS_LOG2 - MIN_CLASS_LOG2 + 1) as usize;
/// Retained buffers per class per thread; excess returns are freed.
const MAX_PER_CLASS: usize = 8;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Runtime kill-switch so benchmarks can measure pooled vs unpooled paths
/// in one process. Defaults to on; `KFDS_WS_POOL=off` (or `0`) disables.
static POOL_ENABLED: AtomicBool = AtomicBool::new(true);
static ENV_INIT: Once = Once::new();

#[inline]
fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        if kfds_switches::KFDS_WS_POOL.is_off() {
            POOL_ENABLED.store(false, Ordering::Relaxed);
        }
    });
    POOL_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables pooling at runtime (overrides `KFDS_WS_POOL`).
/// With pooling off every take allocates and every return frees, which is
/// exactly the pre-pool behavior — used by the perf-trajectory harness to
/// record before/after numbers from one binary.
pub fn set_pool_enabled(on: bool) {
    let _ = enabled(); // apply the env default first so it cannot clobber us
    POOL_ENABLED.store(on, Ordering::Relaxed);
}

struct Pool {
    free: [Vec<Vec<f64>>; NUM_CLASSES],
    /// Index-buffer free lists (`Vec<usize>`), same class geometry. Used
    /// by skeletonization for the per-node column-union lists.
    free_idx: [Vec<Vec<usize>>; NUM_CLASSES],
}

thread_local! {
    static POOL: RefCell<Pool> = const { RefCell::new(Pool {
        free: [const { Vec::new() }; NUM_CLASSES],
        free_idx: [const { Vec::new() }; NUM_CLASSES],
    }) };
}

/// Ceiling class for a request of `len` elements (`class_len >= len`), or
/// `None` if the request is too large to pool.
#[inline]
fn class_for_request(len: usize) -> Option<usize> {
    let bits = len.next_power_of_two().trailing_zeros().max(MIN_CLASS_LOG2);
    if bits > MAX_CLASS_LOG2 {
        None
    } else {
        Some((bits - MIN_CLASS_LOG2) as usize)
    }
}

/// Floor class for a buffer whose allocation holds `cap` elements
/// (`class_len <= cap`), or `None` if it should not be retained.
///
/// Filing by **capacity** (not by initialized length) is what lets a
/// buffer taken for a ceil-class request and returned through
/// `detach()`/[`give_vec`] with a non-power-of-two length land back in
/// the class it was allocated for, so the next identical request hits.
#[inline]
fn class_for_buffer(cap: usize) -> Option<usize> {
    if cap < (1usize << MIN_CLASS_LOG2) {
        return None;
    }
    let bits = usize::BITS - 1 - cap.leading_zeros();
    if bits > MAX_CLASS_LOG2 {
        None // do not hoard giant buffers
    } else {
        Some((bits - MIN_CLASS_LOG2) as usize)
    }
}

#[inline]
fn class_len(class: usize) -> usize {
    1usize << (class as u32 + MIN_CLASS_LOG2)
}

/// Pool invariant: every buffer in `free[class]` has
/// `len >= class_len(class)` and all of its `len` elements initialized.
/// A take therefore only ever *truncates*, and never exposes
/// uninitialized memory.
fn take_raw(len: usize) -> (Vec<f64>, usize) {
    if !enabled() {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return (vec![0.0; len], len);
    }
    let Some(class) = class_for_request(len) else {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return (vec![0.0; len], len);
    };
    let recycled = POOL.with(|p| p.borrow_mut().free[class].pop());
    match recycled {
        Some(mut buf) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            let init_len = buf.len();
            debug_assert!(init_len >= len);
            buf.truncate(len);
            (buf, init_len)
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            // Reserve the full class capacity but initialize (memset) only
            // the requested prefix; the first return zero-extends to the
            // class length once, after which the buffer cycles through the
            // pool with no memset at all. (The previous `vec![0.0; cl]`
            // memset up to 2x the request on every miss.)
            let mut buf = Vec::with_capacity(class_len(class));
            buf.resize(len, 0.0);
            (buf, len)
        }
    }
}

fn push_to_pool(class: usize, buf: Vec<f64>) {
    if !enabled() {
        return;
    }
    debug_assert!(buf.len() >= class_len(class));
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.free[class].len() < MAX_PER_CLASS {
            pool.free[class].push(buf);
        }
    });
}

/// Common return path: files `buf` into the pool under the floor class of
/// its **capacity**, stored at exactly the class length. `init_len`
/// elements of the allocation are initialized (caller contract); if the
/// class length exceeds that, the gap is zero-extended once, after which
/// the buffer cycles through take/return with no initialization work.
///
/// Filing by capacity rather than initialized length matters: a buffer
/// taken for a ceil-class request and detached with a non-power-of-two
/// length used to be filed one class *down* on return, so the next
/// identical request always missed — the pooled `matmul` regression seen
/// in `BENCH_factor.json` (`fig4_left_normal64d_n8192`, 0.55x with the
/// pool on).
fn file_buffer(mut buf: Vec<f64>, init_len: usize) {
    if !enabled() {
        return;
    }
    let Some(class) = class_for_buffer(buf.capacity()) else {
        return;
    };
    let cl = class_len(class);
    debug_assert!(init_len <= buf.capacity());
    // Floor-class filing: the allocation always covers its class length,
    // so the resize below never reallocates (the guards rely on buffer
    // identity being stable across pool round-trips).
    debug_assert!(buf.capacity() >= cl);
    // SAFETY: the first `init_len` elements of this allocation were
    // initialized by the taker (resize or full overwrite); the guards only
    // ever truncate (never reallocate, since WsVec exposes no growth API),
    // and `f64` is Copy, so they are intact.
    unsafe { buf.set_len(init_len) };
    if buf.len() < cl {
        buf.resize(cl, 0.0);
    } else {
        buf.truncate(cl);
    }
    push_to_pool(class, buf);
}

/// Returns a foreign buffer (e.g. a temporary [`Mat`]'s storage) to the
/// current thread's pool. Safe for any vec: only the `len` initialized
/// elements are trusted (the rest is re-zeroed while filing), and the
/// buffer is filed under the class its allocation actually fits.
pub fn give_vec(buf: Vec<f64>) {
    let len = buf.len();
    file_buffer(buf, len);
}

/// A pooled scratch buffer; returns itself to the pool on drop.
///
/// Derefs to `[f64]`. Contents are arbitrary unless obtained through
/// [`take_zeroed`].
pub struct WsVec {
    buf: Vec<f64>,
    /// How many elements of the underlying allocation are initialized;
    /// restored on return so the pool invariant holds.
    init_len: usize,
}

impl WsVec {
    /// Consumes the guard without returning the buffer to the pool,
    /// yielding the underlying storage (e.g. to move into an owned [`Mat`]
    /// that escapes the hot path).
    pub fn detach(mut self) -> Vec<f64> {
        std::mem::take(&mut self.buf)
    }
}

impl Drop for WsVec {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        // After detach() the guard holds an empty vec (capacity 0), which
        // must not be "restored" to init_len.
        if self.init_len > 0 && buf.capacity() >= self.init_len {
            file_buffer(buf, self.init_len);
        }
    }
}

impl std::ops::Deref for WsVec {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        &self.buf
    }
}

impl std::ops::DerefMut for WsVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

/// Takes a scratch buffer of `len` elements with **arbitrary contents**.
/// Use when the consumer fully overwrites the buffer before reading.
pub fn take(len: usize) -> WsVec {
    let (buf, init_len) = take_raw(len);
    WsVec { buf, init_len }
}

/// A pooled **index** scratch buffer (`Vec<usize>`); starts empty with at
/// least the requested capacity and returns itself to the pool on drop.
///
/// Unlike [`WsVec`], this derefs to the `Vec` itself so consumers can
/// `push`/`extend` into it (the union-of-children column lists built
/// during skeletonization). Growth past the reserved capacity is allowed —
/// the buffer is refiled by its final capacity.
pub struct WsIdx {
    buf: Vec<usize>,
}

impl std::ops::Deref for WsIdx {
    type Target = Vec<usize>;
    #[inline]
    fn deref(&self) -> &Vec<usize> {
        &self.buf
    }
}

impl std::ops::DerefMut for WsIdx {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<usize> {
        &mut self.buf
    }
}

impl Drop for WsIdx {
    fn drop(&mut self) {
        if !enabled() {
            return;
        }
        let mut buf = std::mem::take(&mut self.buf);
        let Some(class) = class_for_buffer(buf.capacity()) else {
            return;
        };
        buf.clear();
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.free_idx[class].len() < MAX_PER_CLASS {
                pool.free_idx[class].push(buf);
            }
        });
    }
}

/// Takes an empty index buffer with capacity for at least `cap` entries.
pub fn take_idx(cap: usize) -> WsIdx {
    if !enabled() {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return WsIdx { buf: Vec::with_capacity(cap) };
    }
    let Some(class) = class_for_request(cap.max(1)) else {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return WsIdx { buf: Vec::with_capacity(cap) };
    };
    let recycled = POOL.with(|p| p.borrow_mut().free_idx[class].pop());
    match recycled {
        Some(buf) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            debug_assert!(buf.is_empty() && buf.capacity() >= cap);
            WsIdx { buf }
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            WsIdx { buf: Vec::with_capacity(class_len(class)) }
        }
    }
}

/// Takes a zero-filled scratch buffer of `len` elements.
pub fn take_zeroed(len: usize) -> WsVec {
    let mut w = take(len);
    w.buf.fill(0.0);
    w
}

/// A pooled scratch matrix (column-major, like [`Mat`]); returns its
/// storage to the pool on drop.
pub struct WsMat {
    buf: WsVec,
    nrows: usize,
    ncols: usize,
}

impl WsMat {
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Immutable view of the whole matrix.
    #[inline]
    pub fn rb(&self) -> MatRef<'_> {
        MatRef::from_parts(&self.buf, self.nrows, self.ncols, self.nrows)
    }

    /// Mutable view of the whole matrix.
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_> {
        MatMut::from_parts(&mut self.buf, self.nrows, self.ncols, self.nrows)
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.buf[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.buf[j * self.nrows..(j + 1) * self.nrows]
    }

    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.buf
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.buf
    }

    /// Copies this scratch matrix into an owned [`Mat`] (for results that
    /// must outlive the workspace guard).
    pub fn to_mat(&self) -> Mat {
        self.rb().to_mat()
    }
}

/// Takes an `nrows x ncols` scratch matrix with **arbitrary contents**.
pub fn take_mat(nrows: usize, ncols: usize) -> WsMat {
    WsMat { buf: take(nrows * ncols), nrows, ncols }
}

/// Takes an `nrows x ncols` scratch matrix filled with zeros.
pub fn take_mat_zeroed(nrows: usize, ncols: usize) -> WsMat {
    WsMat { buf: take_zeroed(nrows * ncols), nrows, ncols }
}

/// Hands a no-longer-needed owned matrix's storage back to the pool.
pub fn recycle_mat(m: Mat) {
    give_vec(m.into_vec());
}

/// An owned `nrows x ncols` [`Mat`] whose storage comes from the pool and
/// has **arbitrary contents**. For temporaries that are fully overwritten
/// (e.g. a `beta = 0` GEMM destination) before being read; hand the
/// storage back with [`recycle_mat`] when done.
pub fn take_mat_detached(nrows: usize, ncols: usize) -> Mat {
    Mat::from_col_major(nrows, ncols, take(nrows * ncols).detach())
}

/// Copies a view into an owned [`Mat`] backed by pooled storage — the
/// allocation-free analogue of `MatRef::to_mat` for hot-path temporaries.
pub fn mat_from_view(v: MatRef<'_>) -> Mat {
    let (m, n) = (v.nrows(), v.ncols());
    let mut buf = take(m * n).detach();
    for j in 0..n {
        buf[j * m..(j + 1) * m].copy_from_slice(v.col(j));
    }
    Mat::from_col_major(m, n, buf)
}

/// Process-global pool hit count (all threads).
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// Process-global pool miss count (all threads).
pub fn misses() -> u64 {
    MISSES.load(Ordering::Relaxed)
}

/// Snapshot of `(hits, misses)` for delta measurements around a region.
pub fn stats() -> (u64, u64) {
    (hits(), misses())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_roundtrip_hits() {
        if !enabled() {
            return; // pool-hit mechanics are vacuous with the pool disabled (KFDS_WS_POOL=off lane)
        }
        // Warm the pool, then observe a hit for a same-class request.
        let (_, m0) = stats();
        drop(take(100));
        let (h1, _) = stats();
        let w = take(120); // same 128-element class
        assert_eq!(w.len(), 120);
        drop(w);
        let (h2, m2) = stats();
        assert!(h2 > h1, "second take of the class should hit");
        assert!(m2 > m0);
    }

    #[test]
    fn take_zeroed_is_zeroed_after_dirty_use() {
        {
            let mut w = take(64);
            for v in w.iter_mut() {
                *v = 3.25;
            }
        }
        let w = take_zeroed(64);
        assert!(w.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ws_mat_shapes_and_views() {
        let mut wm = take_mat_zeroed(5, 3);
        wm.col_mut(2)[4] = 8.0;
        assert_eq!(wm.rb().get(4, 2), 8.0);
        assert_eq!(wm.rb().nrows(), 5);
        let owned = wm.to_mat();
        assert_eq!(owned[(4, 2)], 8.0);
    }

    #[test]
    fn huge_requests_fall_through() {
        let len = (1usize << 24) + 1;
        let w = take(len);
        assert_eq!(w.len(), len);
        // Dropping it must not poison the pool.
        drop(w);
        let _ = take(32);
    }

    #[test]
    fn detached_roundtrip_hits_same_class() {
        if !enabled() {
            return; // pool-hit mechanics are vacuous with the pool disabled (KFDS_WS_POOL=off lane)
        }
        // Regression test for the pooled `matmul` slowdown: take → detach →
        // give_vec with a non-power-of-two length must file the buffer back
        // under the class it was taken from (by capacity), so the same
        // request hits instead of missing forever.
        let len = 300; // ceil class 512; floor class of the *length* is 256
        let v = take(len).detach();
        assert!(v.capacity() >= 512);
        give_vec(v);
        let (h0, _) = stats();
        let w = take(len);
        let (h1, _) = stats();
        assert!(h1 > h0, "detached buffer must be reusable for the same request");
        drop(w);
    }

    #[test]
    fn detach_escapes_pool() {
        let w = take(48);
        let v = w.detach();
        assert_eq!(v.len(), 48);
        let m = Mat::from_col_major(8, 6, v);
        assert_eq!(m.nrows(), 8);
        recycle_mat(m);
    }

    #[test]
    fn idx_pool_roundtrip_hits_and_clears() {
        if !enabled() {
            return; // pool-hit mechanics are vacuous with the pool disabled (KFDS_WS_POOL=off lane)
        }
        {
            let mut w = take_idx(100);
            w.extend(0..100);
            assert_eq!(w.len(), 100);
        }
        let (h0, _) = stats();
        let w = take_idx(120); // same 128-entry class
        assert!(w.is_empty(), "recycled index buffer must come back empty");
        assert!(w.capacity() >= 120);
        let (h1, _) = stats();
        assert!(h1 > h0, "second take of the class should hit");
    }

    #[test]
    fn successive_shapes_do_not_alias_logical_len() {
        {
            let mut w = take(256);
            w.fill(1.0);
        }
        let w2 = take(17);
        assert_eq!(w2.len(), 17);
        {
            let w3 = take_zeroed(256);
            assert!(w3.iter().all(|&v| v == 0.0));
        }
    }
}
