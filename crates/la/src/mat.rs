//! Column-major dense matrix types.
//!
//! [`Mat`] owns its storage; [`MatRef`] and [`MatMut`] are borrowed views with
//! a column stride, so submatrices (contiguous row/column ranges) can be taken
//! without copying. All numeric kernels in this crate operate on views.

use std::fmt;

/// An owned, column-major, `f64` dense matrix.
///
/// Element `(i, j)` lives at `data[i + j * nrows]`. Column-major layout is
/// chosen to match the access patterns of the factorization kernels (panel
/// updates, column pivoting) and LAPACK conventions.
#[derive(Clone, PartialEq)]
pub struct Mat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates an `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Mat { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Creates a matrix from a function of the index pair `(i, j)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        Mat { nrows, ncols, data }
    }

    /// Creates a matrix from column-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "column-major data length mismatch");
        Mat { nrows, ncols, data }
    }

    /// Consumes the matrix, returning its column-major storage. The inverse
    /// of [`Mat::from_col_major`]; lets temporaries hand their buffers back
    /// to [`crate::workspace`].
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nrows == 0 || self.ncols == 0
    }

    /// Underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Borrowing view of the whole matrix.
    #[inline]
    pub fn rb(&self) -> MatRef<'_> {
        MatRef { data: &self.data, nrows: self.nrows, ncols: self.ncols, col_stride: self.nrows }
    }

    /// Mutable borrowing view of the whole matrix.
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_> {
        let (nrows, ncols) = (self.nrows, self.ncols);
        MatMut::from_parts(&mut self.data, nrows, ncols, nrows)
    }

    /// View of rows `rows` and columns `cols`.
    pub fn submatrix(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> MatRef<'_> {
        self.rb().submatrix(rows, cols)
    }

    /// The transpose as a new owned matrix.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        crate::blas1::nrm2(&self.data)
    }

    /// Maximum absolute element (`max |a_ij|`), 0 for empty matrices.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Extracts the columns of `self` selected by `idx` into a new matrix.
    pub fn select_cols(&self, idx: &[usize]) -> Mat {
        let mut out = Mat::zeros(self.nrows, idx.len());
        for (k, &j) in idx.iter().enumerate() {
            out.col_mut(k).copy_from_slice(self.col(j));
        }
        out
    }

    /// Horizontal concatenation `[self, other]`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hcat(&self, other: &Mat) -> Mat {
        assert_eq!(self.nrows, other.nrows, "hcat: row count mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Mat { nrows: self.nrows, ncols: self.ncols + other.ncols, data }
    }

    /// Vertical concatenation `[self; other]`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vcat(&self, other: &Mat) -> Mat {
        assert_eq!(self.ncols, other.ncols, "vcat: column count mismatch");
        let mut out = Mat::zeros(self.nrows + other.nrows, self.ncols);
        for j in 0..self.ncols {
            out.col_mut(j)[..self.nrows].copy_from_slice(self.col(j));
            out.col_mut(j)[self.nrows..].copy_from_slice(other.col(j));
        }
        out
    }

    /// Swaps columns `a` and `b`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        assert!(a < self.ncols && b < self.ncols, "column swap out of range");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (left, right) = self.data.split_at_mut(hi * self.nrows);
        left[lo * self.nrows..(lo + 1) * self.nrows].swap_with_slice(&mut right[..self.nrows]);
    }

    /// Swaps rows `a` and `b`.
    ///
    /// # Panics
    /// Panics if either index is out of range (an out-of-range row index
    /// smaller than `data.len()` would otherwise silently swap elements
    /// of the *next* column).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.nrows && b < self.nrows, "row swap out of range");
        if a == b {
            return;
        }
        for j in 0..self.ncols {
            self.data.swap(a + j * self.nrows, b + j * self.nrows);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.nrows, self.ncols)?;
        let show_rows = self.nrows.min(8);
        let show_cols = self.ncols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if show_cols < self.ncols { "..." } else { "" })?;
        }
        if show_rows < self.nrows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Immutable column-major matrix view with a column stride.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f64],
    nrows: usize,
    ncols: usize,
    col_stride: usize,
}

impl<'a> MatRef<'a> {
    /// Builds a view from raw column-major parts.
    ///
    /// # Panics
    /// Panics if the slice is too short for the given shape/stride.
    pub fn from_parts(data: &'a [f64], nrows: usize, ncols: usize, col_stride: usize) -> Self {
        assert!(col_stride >= nrows || ncols <= 1);
        if ncols > 0 {
            assert!(data.len() >= (ncols - 1) * col_stride + nrows, "view out of bounds");
        }
        MatRef { data, nrows, ncols, col_stride }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i + j * self.col_stride]
    }

    /// Column `j` as a contiguous slice of length `nrows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        debug_assert!(j < self.ncols);
        &self.data[j * self.col_stride..j * self.col_stride + self.nrows]
    }

    /// Pointer to element `(0, 0)`; element `(i, j)` is at offset
    /// `i + j * col_stride`. Used by the SIMD kernels.
    #[inline]
    pub fn as_ptr(&self) -> *const f64 {
        self.data.as_ptr()
    }

    /// Sub-view of rows `rows` and columns `cols`.
    pub fn submatrix(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> MatRef<'a> {
        assert!(rows.end <= self.nrows && cols.end <= self.ncols, "submatrix out of bounds");
        assert!(rows.start <= rows.end && cols.start <= cols.end);
        let offset = rows.start + cols.start * self.col_stride;
        let nrows = rows.end - rows.start;
        let ncols = cols.end - cols.start;
        // Degenerate (zero-extent) views carry no data at all; computing an
        // offset into possibly-empty parent storage would be out of bounds.
        let (start, end) = if ncols == 0 || nrows == 0 {
            (0, 0)
        } else {
            (offset, offset + (ncols - 1) * self.col_stride + nrows)
        };
        MatRef { data: &self.data[start..end], nrows, ncols, col_stride: self.col_stride }
    }

    /// Copies the view into an owned matrix.
    pub fn to_mat(&self) -> Mat {
        let mut out = Mat::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            out.col_mut(j).copy_from_slice(self.col(j));
        }
        out
    }
}

/// Mutable column-major matrix view with a column stride.
///
/// Internally a raw pointer rather than a `&mut [f64]` slice: row-wise
/// splits ([`MatMut::split_at_row`]) produce two views whose storage spans
/// interleave even though their element sets are disjoint, which two `&mut`
/// slices cannot express without aliasing UB. All element accesses are
/// bounds-checked against the logical shape (debug assertions on the hot
/// accessors, hard assertions on the splitting constructors), and every
/// view originates from a uniquely borrowed `&'a mut [f64]`, so the usual
/// borrow rules still guarantee exclusivity of the underlying storage.
pub struct MatMut<'a> {
    ptr: *mut f64,
    nrows: usize,
    ncols: usize,
    col_stride: usize,
    marker: std::marker::PhantomData<&'a mut [f64]>,
}

// SAFETY: a MatMut is semantically an exclusive borrow of f64 storage
// (PhantomData<&'a mut [f64]>), and f64 is Send + Sync. Disjoint views
// produced by the splitting methods never overlap element-wise, so moving
// them to other threads (rayon::join over row/column panels) is sound.
unsafe impl Send for MatMut<'_> {}
// SAFETY: `&MatMut` exposes no mutation (all writes take `&mut self`), so
// sharing the view across threads is no more capable than sharing
// `&&mut [f64]`, which is Sync because f64 is.
unsafe impl Sync for MatMut<'_> {}

impl<'a> MatMut<'a> {
    /// Builds a mutable view from raw column-major parts.
    ///
    /// # Panics
    /// Panics if the slice is too short for the given shape/stride.
    pub fn from_parts(data: &'a mut [f64], nrows: usize, ncols: usize, col_stride: usize) -> Self {
        assert!(col_stride >= nrows || ncols <= 1);
        if ncols > 0 {
            assert!(data.len() >= (ncols - 1) * col_stride + nrows, "view out of bounds");
        }
        MatMut {
            ptr: data.as_mut_ptr(),
            nrows,
            ncols,
            col_stride,
            marker: std::marker::PhantomData,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// Number of storage elements spanned by this view (0 when degenerate).
    #[inline]
    fn span(&self) -> usize {
        if self.nrows == 0 || self.ncols == 0 {
            0
        } else {
            (self.ncols - 1) * self.col_stride + self.nrows
        }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols);
        // SAFETY: in bounds per the shape assertion; the view owns exclusive
        // access to its elements for 'a.
        unsafe { *self.ptr.add(i + j * self.col_stride) }
    }

    /// Sets element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows && j < self.ncols);
        // SAFETY: as in `get`.
        unsafe { *self.ptr.add(i + j * self.col_stride) = v }
    }

    /// Column `j` as a mutable contiguous slice of length `nrows`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.ncols);
        // SAFETY: a column is nrows contiguous elements inside the view's
        // span; exclusivity follows from &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(j * self.col_stride), self.nrows) }
    }

    /// Immutable snapshot of this view.
    #[inline]
    pub fn rb(&self) -> MatRef<'_> {
        // SAFETY: the span is inside the storage this view exclusively
        // borrows; the returned lifetime is tied to &self.
        let data = unsafe { std::slice::from_raw_parts(self.ptr, self.span()) };
        MatRef { data, nrows: self.nrows, ncols: self.ncols, col_stride: self.col_stride }
    }

    /// Reborrows the view mutably (shorter lifetime).
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_> {
        MatMut {
            ptr: self.ptr,
            nrows: self.nrows,
            ncols: self.ncols,
            col_stride: self.col_stride,
            marker: std::marker::PhantomData,
        }
    }

    /// Splits into the columns `[0, j)` and `[j, ncols)`.
    pub fn split_at_col(self, j: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(j <= self.ncols);
        // SAFETY: the halves cover disjoint column ranges of a view we hold
        // exclusively, so neither can reach the other's elements.
        let right_ptr = unsafe { self.ptr.add(j * self.col_stride) };
        (
            MatMut {
                ptr: self.ptr,
                nrows: self.nrows,
                ncols: j,
                col_stride: self.col_stride,
                marker: std::marker::PhantomData,
            },
            MatMut {
                ptr: right_ptr,
                nrows: self.nrows,
                ncols: self.ncols - j,
                col_stride: self.col_stride,
                marker: std::marker::PhantomData,
            },
        )
    }

    /// Splits into the rows `[0, i)` and `[i, nrows)`.
    ///
    /// The two views' storage spans interleave (each column contributes to
    /// both), but their element sets are disjoint, so they may be mutated
    /// concurrently — this is what the row-parallel GEMM path relies on for
    /// tall-skinny products.
    pub fn split_at_row(self, i: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(i <= self.nrows);
        // SAFETY: same storage, disjoint row ranges; every accessor bounds
        // element coordinates by the view's own (nrows, ncols), so the top
        // view never touches rows >= i and the bottom never touches rows
        // < i of the parent.
        let bot_ptr = unsafe { self.ptr.add(i) };
        (
            MatMut {
                ptr: self.ptr,
                nrows: i,
                ncols: self.ncols,
                col_stride: self.col_stride,
                marker: std::marker::PhantomData,
            },
            MatMut {
                ptr: bot_ptr,
                nrows: self.nrows - i,
                ncols: self.ncols,
                col_stride: self.col_stride,
                marker: std::marker::PhantomData,
            },
        )
    }

    /// Mutable sub-view of rows `rows` and columns `cols`.
    pub fn submatrix_mut(
        self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> MatMut<'a> {
        assert!(rows.end <= self.nrows && cols.end <= self.ncols, "submatrix out of bounds");
        assert!(rows.start <= rows.end && cols.start <= cols.end);
        let nrows = rows.end - rows.start;
        let ncols = cols.end - cols.start;
        // Degenerate views keep the base pointer: the offset could point
        // past the end of the parent's storage.
        let ptr = if nrows == 0 || ncols == 0 {
            self.ptr
        } else {
            // SAFETY: the first element of the sub-view is inside the
            // parent's span per the shape assertions above.
            unsafe { self.ptr.add(rows.start + cols.start * self.col_stride) }
        };
        MatMut { ptr, nrows, ncols, col_stride: self.col_stride, marker: std::marker::PhantomData }
    }

    /// Pointer to element `(0, 0)`; element `(i, j)` is at offset
    /// `i + j * col_stride`. Used by the SIMD microkernel to write a full
    /// register tile without materializing per-column borrows.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f64 {
        self.ptr
    }

    /// Fills the view with `v`.
    pub fn fill(&mut self, v: f64) {
        for j in 0..self.ncols {
            self.col_mut(j).fill(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_indexing_roundtrip() {
        let m = Mat::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], (i * 10 + j) as f64);
            }
        }
    }

    #[test]
    fn col_major_layout() {
        let m = Mat::from_fn(2, 2, |i, j| (i + 2 * j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), &[2.0, 3.0]);
    }

    #[test]
    fn identity_and_transpose() {
        let i3 = Mat::identity(3);
        assert_eq!(i3.transpose(), i3);
        let m = Mat::from_fn(2, 3, |i, j| (i + j * 7) as f64);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn submatrix_view_matches_elements() {
        let m = Mat::from_fn(5, 6, |i, j| (i * 100 + j) as f64);
        let v = m.submatrix(1..4, 2..5);
        assert_eq!(v.nrows(), 3);
        assert_eq!(v.ncols(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(v.get(i, j), m[(i + 1, j + 2)]);
            }
        }
        let owned = v.to_mat();
        assert_eq!(owned[(2, 2)], m[(3, 4)]);
    }

    #[test]
    fn swap_rows_cols() {
        let mut m = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let orig = m.clone();
        m.swap_cols(0, 2);
        m.swap_cols(0, 2);
        m.swap_rows(1, 2);
        m.swap_rows(2, 1);
        assert_eq!(m, orig);
        m.swap_rows(0, 1);
        assert_eq!(m[(0, 0)], orig[(1, 0)]);
    }

    #[test]
    fn hcat_vcat_shapes() {
        let a = Mat::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Mat::from_fn(2, 3, |i, j| (i * j) as f64);
        let h = a.hcat(&b);
        assert_eq!((h.nrows(), h.ncols()), (2, 5));
        assert_eq!(h[(1, 3)], b[(1, 1)]);
        let c = Mat::from_fn(3, 2, |i, j| (i + j) as f64);
        let v = a.vcat(&c);
        assert_eq!((v.nrows(), v.ncols()), (5, 2));
        assert_eq!(v[(3, 1)], c[(1, 1)]);
    }

    #[test]
    fn select_cols_picks_columns() {
        let m = Mat::from_fn(3, 5, |i, j| (j * 10 + i) as f64);
        let s = m.select_cols(&[4, 0, 2]);
        assert_eq!(s.col(0), m.col(4));
        assert_eq!(s.col(1), m.col(0));
        assert_eq!(s.col(2), m.col(2));
    }

    #[test]
    fn split_at_col_disjoint() {
        let mut m = Mat::zeros(3, 4);
        let (mut l, mut r) = m.rb_mut().split_at_col(2);
        l.fill(1.0);
        r.fill(2.0);
        assert_eq!(m.col(1), &[1.0; 3]);
        assert_eq!(m.col(2), &[2.0; 3]);
    }

    #[test]
    fn split_at_row_disjoint() {
        let mut m = Mat::zeros(4, 3);
        let (mut top, mut bot) = m.rb_mut().split_at_row(1);
        assert_eq!((top.nrows(), top.ncols()), (1, 3));
        assert_eq!((bot.nrows(), bot.ncols()), (3, 3));
        top.fill(1.0);
        bot.fill(2.0);
        for j in 0..3 {
            assert_eq!(m[(0, j)], 1.0);
            for i in 1..4 {
                assert_eq!(m[(i, j)], 2.0);
            }
        }
        // Degenerate splits at both ends.
        let (e0, rest) = m.rb_mut().split_at_row(0);
        assert_eq!(e0.nrows(), 0);
        assert_eq!(rest.nrows(), 4);
        let (all, e1) = m.rb_mut().split_at_row(4);
        assert_eq!(all.nrows(), 4);
        assert_eq!(e1.nrows(), 0);
    }

    #[test]
    fn split_at_row_threads_write_concurrently() {
        let mut m = Mat::zeros(64, 5);
        let (mut top, mut bot) = m.rb_mut().split_at_row(32);
        std::thread::scope(|s| {
            s.spawn(move || {
                for j in 0..5 {
                    top.col_mut(j).fill(7.0);
                }
            });
            s.spawn(move || {
                for j in 0..5 {
                    bot.col_mut(j).fill(9.0);
                }
            });
        });
        assert_eq!(m[(31, 4)], 7.0);
        assert_eq!(m[(32, 0)], 9.0);
    }

    #[test]
    fn norms() {
        let m = Mat::from_col_major(2, 2, vec![3.0, 0.0, 0.0, -4.0]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-14);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn degenerate_submatrix_of_empty_storage() {
        // A (1 x 0) matrix has no storage; zero-extent sub-views anywhere
        // inside its logical shape must be valid (regression test for the
        // rank-0 skeleton case).
        let m = Mat::zeros(1, 0);
        let v = m.submatrix(1..1, 0..0);
        assert_eq!((v.nrows(), v.ncols()), (0, 0));
        let t = Mat::zeros(3, 2);
        let v2 = t.submatrix(3..3, 0..2);
        assert_eq!(v2.nrows(), 0);
        let mut t2 = Mat::zeros(2, 3);
        let v3 = t2.rb_mut().submatrix_mut(2..2, 3..3);
        assert_eq!((v3.nrows(), v3.ncols()), (0, 0));
    }

    #[test]
    #[should_panic]
    fn hcat_mismatch_panics() {
        let a = Mat::zeros(2, 2);
        let b = Mat::zeros(3, 2);
        let _ = a.hcat(&b);
    }
}
