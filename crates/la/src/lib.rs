//! # kfds-la — dense linear algebra kernels for `kernel-fds`
//!
//! A self-contained, dependency-light dense linear algebra layer providing
//! the LAPACK/BLAS functionality the fast direct solver needs:
//!
//! * [`Mat`]/[`MatRef`]/[`MatMut`] — column-major matrices and strided views;
//! * BLAS level 1–3: [`blas1`], [`blas2`] (GEMV/GER), blocked parallel
//!   [`fn@gemm`] with packing and a register-tile microkernel;
//! * [`Lu`] — partial-pivoted LU (`GETRF`/`GETRS` analogue) and
//!   [`Cholesky`] (`POTRF` analogue) with pivot stability monitors used
//!   by the solver's §III diagnostics;
//! * [`Qr`] — Householder QR; [`ColPivQr`] — column-pivoted rank-revealing
//!   QR with the paper's `sigma_{s+1}/sigma_1 < tau` truncation rule;
//! * [`interp_decomp`] — the interpolative decomposition (ID) primitive of
//!   ASKIT's skeletonization (Algorithm II.1);
//! * triangular solves ([`tri`]) and power iteration ([`sigma_max`]).
//!
//! Everything here is written from scratch (the Rust crate ecosystem is thin
//! for pivoted QR/ID, which is the paper's key dense kernel) and tested
//! against naive reference implementations and algebraic invariants.

pub mod batch;
pub mod blas1;
pub mod blas2;
pub mod chol;
pub mod cpqr;
pub mod error;
pub mod gemm;
pub mod id;
pub mod lu;
pub mod mat;
pub mod power;
pub mod qr;
pub mod simd;
pub mod tri;
pub mod workspace;

pub use batch::{
    batch_active, group_by_shape, set_batch_enabled, Arena, BatchOp, BatchPlan, FactorRef,
};
pub use chol::Cholesky;
pub use cpqr::ColPivQr;
pub use error::LaError;
pub use gemm::{gemm, matmul, matmul_op, Trans};
pub use id::{interp_decomp, InterpDecomp};
pub use lu::Lu;
pub use mat::{Mat, MatMut, MatRef};
pub use power::sigma_max;
pub use qr::Qr;
