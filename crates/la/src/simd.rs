//! Explicit-SIMD microkernels with runtime dispatch (AVX2 + FMA).
//!
//! The paper's single-node performance rests on hand-written AVX2/AVX-512
//! register-tile kernels (GSKS \[24\], BLIS-style GEMM); the scalar
//! `[[f64; NR]; MR]` tiles this repo started with leave an order of
//! magnitude on the table per core. This module provides the explicit
//! vector kernels every hot path bottoms out in:
//!
//! * an `8 x 6` f64 GEMM microkernel ([`dgemm_tile_avx2`]) operating on
//!   MR/NR-packed panels, accumulators held in 12 `ymm` registers and
//!   written straight into column-major `C`;
//! * a fused-summation rank-`d` tile kernel ([`gsks_tile_8x4`]) for the
//!   GSKS engine (8 targets x 4 sources per register tile);
//! * GEMV ([`dgemv_add_avx2`]) with 4-column blocking so each `y` vector
//!   load amortizes four FMA columns;
//! * dot / axpy vector loops for BLAS-1 ([`dot_avx2`], [`axpy_avx2`]);
//! * a vectorized polynomial `exp` ([`vexp`]) for the Gaussian/Laplacian
//!   kernel transforms (paper §II-D evaluates the kernel inside the
//!   register tile; a scalar `exp` call per element destroys the fusion
//!   win). Accuracy is bounded against [`f64::exp`] — see [`vexp`].
//!
//! # Dispatch
//!
//! Whether the vector kernels run is decided at runtime:
//!
//! * the CPU must report AVX2 **and** FMA (`is_x86_feature_detected!`);
//!   on other targets the portable scalar paths are the implementation
//!   (no unconditional `std::arch::x86_64` imports anywhere);
//! * the `KFDS_SIMD=off` (or `=0`) environment kill-switch — mirroring
//!   `KFDS_WS_POOL` — forces the scalar reference paths, so
//!   pooled/unpooled x simd/scalar can be A/B'd in one binary;
//! * [`set_simd_enabled`] overrides the environment at runtime (used by
//!   the perf-trajectory harness and the A/B property tests).
//!
//! # Tolerance model
//!
//! With SIMD off, every consumer takes its pre-existing scalar path and
//! reproduces the previous numerics **bitwise**. With SIMD on, results
//! differ from scalar by reassociation and fused multiply-adds: for a
//! length-`k` reduction the per-element deviation is bounded by
//! `O(k * eps * sum |terms|)` — the property tests in
//! `crates/la/tests/props.rs` assert agreement within that envelope.
//! [`vexp`] deviates from `f64::exp` by at most a few ulp (asserted at
//! `1e-14` relative); inputs below the normal range flush to zero.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// GEMM microkernel register-tile rows.
pub const GEMM_MR: usize = 8;
/// GEMM microkernel register-tile columns.
pub const GEMM_NR: usize = 6;
/// GSKS tile kernel rows (targets).
pub const GSKS_MR: usize = 8;
/// GSKS tile kernel columns (sources).
pub const GSKS_NR: usize = 4;

/// Runtime kill-switch so benchmarks and tests can A/B the vector and
/// scalar paths in one process. Defaults to on; `KFDS_SIMD=off` (or `0`)
/// disables.
static SIMD_ENABLED: AtomicBool = AtomicBool::new(true);
static ENV_INIT: Once = Once::new();

#[inline]
fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        if kfds_switches::KFDS_SIMD.is_off() {
            SIMD_ENABLED.store(false, Ordering::Relaxed);
        }
    });
    SIMD_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables the SIMD kernels at runtime (overrides `KFDS_SIMD`).
/// With SIMD off every consumer runs its scalar reference path, which is
/// exactly the pre-SIMD behavior — used by the perf-trajectory harness and
/// the scalar-vs-vector property tests to A/B from one binary.
pub fn set_simd_enabled(on: bool) {
    let _ = enabled(); // apply the env default first so it cannot clobber us
    SIMD_ENABLED.store(on, Ordering::Relaxed);
}

/// `true` if this CPU supports the vector kernels (x86-64 with AVX2+FMA).
/// Immutable for the process lifetime — [`active`] implies this, which is
/// what makes capturing the dispatch decision once per call sound.
///
/// Always `false` under Miri: the interpreter does not implement the AVX
/// intrinsics, so the Miri lane checks the scalar paths (where all the
/// raw-pointer/`set_len` reasoning lives) and dispatch stays honest.
pub fn cpu_supported() -> bool {
    if cfg!(miri) {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `true` if the vector kernels are both supported and enabled.
#[inline]
pub fn active() -> bool {
    enabled() && cpu_supported()
}

/// Human-readable list of detected vector features (for perf reports),
/// e.g. `"avx2+fma+avx512f"`; `"none"` when nothing relevant is present.
pub fn detected_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let feats = [
            ("avx2", is_x86_feature_detected!("avx2")),
            ("fma", is_x86_feature_detected!("fma")),
            ("avx512f", is_x86_feature_detected!("avx512f")),
        ];
        let have: Vec<&str> = feats.iter().filter(|(_, h)| *h).map(|(n, _)| *n).collect();
        if have.is_empty() {
            "none".to_string()
        } else {
            have.join("+")
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "none".to_string()
    }
}

/// Elementwise `exp` over a slice, in place.
///
/// Dispatches to a 4-wide AVX2 polynomial kernel when [`active`]; falls
/// back to [`f64::exp`] per element otherwise (so `KFDS_SIMD=off` is
/// bitwise the scalar libm path).
///
/// Vector-path accuracy: relative error vs [`f64::exp`] is a few ulp
/// (tested at `1e-14`); inputs below `-708.396` (where `exp` enters the
/// subnormal range) flush to `0.0` (absolute error `< 2.5e-308`); inputs
/// above `709.783` saturate to `+inf`; NaN propagates.
pub fn vexp(xs: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        if active() {
            // SAFETY: active() implies AVX2+FMA support.
            unsafe { x86::vexp_avx2(xs) };
            return;
        }
    }
    for v in xs.iter_mut() {
        *v = v.exp();
    }
}

/// The GSKS rank-`d` register tile: inner products between `GSKS_MR`
/// packed points `xr` (point-major, point `r` at `xr[r*d..(r+1)*d]`) and
/// `GSKS_NR` packed points `yct` stored **dimension-major**
/// (`yct[kk*GSKS_NR + c] = y_c[kk]`), written row-major into `out`
/// (`out[r*GSKS_NR + c] = xr_r . y_c`).
///
/// Correct on every target: uses the AVX2 kernel when [`active`], a
/// portable loop over the same transposed layout otherwise.
///
/// # Panics
/// Panics if `xr` or `yct` are shorter than the tile requires.
pub fn gsks_tile_8x4(xr: &[f64], yct: &[f64], d: usize, out: &mut [f64; GSKS_MR * GSKS_NR]) {
    assert!(xr.len() >= GSKS_MR * d, "gsks_tile_8x4: xr too short");
    assert!(yct.len() >= GSKS_NR * d, "gsks_tile_8x4: yct too short");
    #[cfg(target_arch = "x86_64")]
    {
        if active() {
            // SAFETY: bounds asserted above; active() implies AVX2+FMA.
            unsafe { x86::gsks_tile_avx2(xr.as_ptr(), yct.as_ptr(), d, out) };
            return;
        }
    }
    out.fill(0.0);
    for kk in 0..d {
        let yv = &yct[GSKS_NR * kk..GSKS_NR * kk + GSKS_NR];
        for r in 0..GSKS_MR {
            let xv = xr[r * d + kk];
            let orow = &mut out[GSKS_NR * r..GSKS_NR * r + GSKS_NR];
            for (o, &y) in orow.iter_mut().zip(yv) {
                *o += xv * y;
            }
        }
    }
}

/// The GSKS multi-RHS contraction: `W[r, t] += sum_c tile[r, c] * ut[c, t]`
/// for the `GSKS_MR x GSKS_NR` kernel-value tile (row-major) against an
/// `GSKS_NR x nrhs` slice of the **transposed** weight matrix (`ut[c, t]`
/// at `ut[c * nrhs + t]`), accumulating into the row-major `GSKS_MR x nrhs`
/// output chunk `wrows`.
///
/// This is the fused epilogue's hot loop when many right-hand sides share
/// one kernel block (the factorization's `P̂` panels): per tile the
/// `MR x NR` kernel values contract against every RHS, so the work is
/// `MR * NR * nrhs` FMAs — vectorized 4-wide over `t`. Correct on every
/// target: AVX2 kernel when [`active`], portable loop otherwise.
///
/// # Panics
/// Panics if `ut` or `wrows` are shorter than the tile requires.
pub fn gsks_contract_8x4(
    tile: &[f64; GSKS_MR * GSKS_NR],
    ut: &[f64],
    nrhs: usize,
    wrows: &mut [f64],
) {
    assert!(ut.len() >= GSKS_NR * nrhs, "gsks_contract_8x4: ut too short");
    assert!(wrows.len() >= GSKS_MR * nrhs, "gsks_contract_8x4: wrows too short");
    #[cfg(target_arch = "x86_64")]
    {
        if active() {
            // SAFETY: bounds asserted above; active() implies AVX2+FMA.
            unsafe {
                x86::gsks_contract_avx2(tile, ut.as_ptr(), nrhs, wrows.as_mut_ptr());
            }
            return;
        }
    }
    for (r, trow) in tile.chunks_exact(GSKS_NR).enumerate() {
        let wrow = &mut wrows[r * nrhs..(r + 1) * nrhs];
        for (c, &kv) in trow.iter().enumerate() {
            let urow = &ut[c * nrhs..c * nrhs + nrhs];
            for (wt, &uv) in wrow.iter_mut().zip(urow) {
                *wt += kv * uv;
            }
        }
    }
}

/// Squared-distance epilogue for GEMM-backed neighbor tiles: turns one
/// column of a Gram block `g[i] = x_i . y` into squared distances via the
/// norms identity `‖x_i − y‖² = ‖x_i‖² + ‖y‖² − 2 x_i . y`, clamped at
/// zero (the expanded form can go negative by cancellation for coincident
/// points). `row_norms[i] = ‖x_i‖²`, `col_norm = ‖y‖²`.
///
/// Dispatches to a 4-wide FMA kernel when [`active`]; the scalar loop is
/// the bitwise reference (`fnmadd` vs `mul_add` agree: both fuse).
///
/// # Panics
/// Panics if `row_norms.len() != g.len()`.
pub fn dist_epilogue(g: &mut [f64], row_norms: &[f64], col_norm: f64) {
    assert_eq!(g.len(), row_norms.len(), "dist_epilogue: norm length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if active() {
            // SAFETY: lengths asserted equal above; active() implies
            // AVX2+FMA.
            unsafe { x86::dist_epilogue_avx2(g, row_norms, col_norm) };
            return;
        }
    }
    for (gi, &rn) in g.iter_mut().zip(row_norms) {
        *gi = (-2.0f64).mul_add(*gi, rn + col_norm).max(0.0);
    }
}

/// `true` if this CPU additionally supports the 8-wide AVX-512 variants
/// (the baseline vector kernels require only AVX2+FMA). Immutable for the
/// process lifetime, like [`cpu_supported`]; gated by the same
/// `KFDS_SIMD` kill-switch through [`active`].
pub fn avx512_supported() -> bool {
    if cfg!(miri) {
        return false; // no AVX-512 intrinsics in the interpreter
    }
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{
    axpy_avx2, dgemm_tile_avx2, dgemv_add_avx2, dgemv_t_avx2, dgemv_t_avx512, dot_avx2,
};

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// `C[0..8, 0..6] += alpha * sum_k ap[:, k] * bp[k, :]` — the BLIS-style
    /// register-tile microkernel. `ap` is an MR-major packed A panel (8
    /// consecutive rows per `k`), `bp` an NR-major packed B panel (6
    /// consecutive columns per `k`); `C` is column-major with stride `ldc`.
    /// The 12 accumulators live in `ymm` registers for the whole `k` loop;
    /// the epilogue fuses the `alpha` scale into the `C` update.
    ///
    /// # Safety
    /// Requires AVX2+FMA. `ap`/`bp` must hold at least `8*kc` / `6*kc`
    /// readable elements and `c[i + j*ldc]` must be writable for all
    /// `i < 8`, `j < 6`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dgemm_tile_avx2(
        kc: usize,
        alpha: f64,
        ap: *const f64,
        bp: *const f64,
        c: *mut f64,
        ldc: usize,
    ) {
        debug_assert!(super::cpu_supported(), "dgemm_tile_avx2 needs AVX2+FMA");
        debug_assert!(!ap.is_null() && !bp.is_null() && !c.is_null());
        debug_assert!(ldc >= 8, "C tile columns (8 rows) would overlap: ldc = {ldc}");
        let mut acc = [[_mm256_setzero_pd(); 2]; 6];
        for k in 0..kc {
            let a0 = _mm256_loadu_pd(ap.add(8 * k));
            let a1 = _mm256_loadu_pd(ap.add(8 * k + 4));
            for (j, accj) in acc.iter_mut().enumerate() {
                let b = _mm256_broadcast_sd(&*bp.add(6 * k + j));
                accj[0] = _mm256_fmadd_pd(a0, b, accj[0]);
                accj[1] = _mm256_fmadd_pd(a1, b, accj[1]);
            }
        }
        let va = _mm256_set1_pd(alpha);
        for (j, accj) in acc.iter().enumerate() {
            let col = c.add(j * ldc);
            let lo = _mm256_loadu_pd(col);
            let hi = _mm256_loadu_pd(col.add(4));
            _mm256_storeu_pd(col, _mm256_fmadd_pd(accj[0], va, lo));
            _mm256_storeu_pd(col.add(4), _mm256_fmadd_pd(accj[1], va, hi));
        }
    }

    /// The GSKS tile kernel: 8 broadcast-FMA rows against one 4-wide
    /// source vector per dimension. See [`super::gsks_tile_8x4`].
    ///
    /// # Safety
    /// Requires AVX2+FMA; `xr` must hold `8*d` and `yct` `4*d` elements.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gsks_tile_avx2(xr: *const f64, yct: *const f64, d: usize, out: &mut [f64; 32]) {
        debug_assert!(super::cpu_supported(), "gsks_tile_avx2 needs AVX2+FMA");
        debug_assert!(!xr.is_null() && !yct.is_null());
        let mut acc = [_mm256_setzero_pd(); 8];
        for kk in 0..d {
            let yv = _mm256_loadu_pd(yct.add(4 * kk));
            for (r, a) in acc.iter_mut().enumerate() {
                let xv = _mm256_broadcast_sd(&*xr.add(r * d + kk));
                *a = _mm256_fmadd_pd(xv, yv, *a);
            }
        }
        for (r, a) in acc.iter().enumerate() {
            _mm256_storeu_pd(out.as_mut_ptr().add(4 * r), *a);
        }
    }

    /// The GSKS multi-RHS contraction kernel: `W[r, 0..nrhs] +=
    /// tile[r, c] * ut[c, 0..nrhs]` vectorized 4-wide over the RHS index.
    /// Each 4-wide RHS block loads the four `ut` rows once and reuses them
    /// across all eight tile rows. See [`super::gsks_contract_8x4`].
    ///
    /// # Safety
    /// Requires AVX2+FMA; `ut` must hold `4 * nrhs` and `w` `8 * nrhs`
    /// elements (checked by the safe caller).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gsks_contract_avx2(tile: &[f64; 32], ut: *const f64, nrhs: usize, w: *mut f64) {
        debug_assert!(super::cpu_supported(), "gsks_contract_avx2 needs AVX2+FMA");
        debug_assert!(nrhs == 0 || (!ut.is_null() && !w.is_null()));
        let mut t = 0;
        while t + 4 <= nrhs {
            let u0 = _mm256_loadu_pd(ut.add(t));
            let u1 = _mm256_loadu_pd(ut.add(nrhs + t));
            let u2 = _mm256_loadu_pd(ut.add(2 * nrhs + t));
            let u3 = _mm256_loadu_pd(ut.add(3 * nrhs + t));
            for r in 0..8 {
                let wp = w.add(r * nrhs + t);
                let mut acc = _mm256_loadu_pd(wp);
                acc = _mm256_fmadd_pd(_mm256_broadcast_sd(&tile[4 * r]), u0, acc);
                acc = _mm256_fmadd_pd(_mm256_broadcast_sd(&tile[4 * r + 1]), u1, acc);
                acc = _mm256_fmadd_pd(_mm256_broadcast_sd(&tile[4 * r + 2]), u2, acc);
                acc = _mm256_fmadd_pd(_mm256_broadcast_sd(&tile[4 * r + 3]), u3, acc);
                _mm256_storeu_pd(wp, acc);
            }
            t += 4;
        }
        while t < nrhs {
            for r in 0..8 {
                let mut s = *w.add(r * nrhs + t);
                s = tile[4 * r].mul_add(*ut.add(t), s);
                s = tile[4 * r + 1].mul_add(*ut.add(nrhs + t), s);
                s = tile[4 * r + 2].mul_add(*ut.add(2 * nrhs + t), s);
                s = tile[4 * r + 3].mul_add(*ut.add(3 * nrhs + t), s);
                *w.add(r * nrhs + t) = s;
            }
            t += 1;
        }
    }

    /// The distance-tile epilogue: `g[i] = max(rn[i] + cn - 2*g[i], 0)`
    /// vectorized 4-wide (see [`super::dist_epilogue`]). `fnmadd` fuses
    /// exactly like the scalar `mul_add` reference, so both paths agree
    /// bitwise on finite inputs.
    ///
    /// # Safety
    /// Requires AVX2+FMA. `g` and `rn` must have equal lengths (checked by
    /// the safe caller).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dist_epilogue_avx2(g: &mut [f64], rn: &[f64], cn: f64) {
        debug_assert!(super::cpu_supported(), "dist_epilogue_avx2 needs AVX2+FMA");
        debug_assert_eq!(g.len(), rn.len());
        let n = g.len();
        let gp = g.as_mut_ptr();
        let rp = rn.as_ptr();
        let vcn = _mm256_set1_pd(cn);
        let two = _mm256_set1_pd(2.0);
        let zero = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            let s = _mm256_add_pd(_mm256_loadu_pd(rp.add(i)), vcn);
            let d = _mm256_fnmadd_pd(_mm256_loadu_pd(gp.add(i)), two, s);
            _mm256_storeu_pd(gp.add(i), _mm256_max_pd(d, zero));
            i += 4;
        }
        while i < n {
            *gp.add(i) = (-2.0f64).mul_add(*gp.add(i), *rp.add(i) + cn).max(0.0);
            i += 1;
        }
    }

    /// Vector dot product with four independent FMA accumulators.
    ///
    /// # Safety
    /// Requires AVX2+FMA. `x` and `y` must have equal lengths (checked by
    /// the safe caller in `blas1`).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        let mut a0 = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        let mut a3 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 16 <= n {
            a0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), a0);
            a1 =
                _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i + 4)), _mm256_loadu_pd(yp.add(i + 4)), a1);
            a2 =
                _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i + 8)), _mm256_loadu_pd(yp.add(i + 8)), a2);
            a3 = _mm256_fmadd_pd(
                _mm256_loadu_pd(xp.add(i + 12)),
                _mm256_loadu_pd(yp.add(i + 12)),
                a3,
            );
            i += 16;
        }
        while i + 4 <= n {
            a0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), a0);
            i += 4;
        }
        let t = _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
        let lo = _mm256_castpd256_pd128(t);
        let hi = _mm256_extractf128_pd(t, 1);
        let q = _mm_add_pd(lo, hi);
        let mut s = _mm_cvtsd_f64(_mm_add_sd(q, _mm_unpackhi_pd(q, q)));
        while i < n {
            s += *xp.add(i) * *yp.add(i);
            i += 1;
        }
        s
    }

    /// `y += alpha * x` with FMA.
    ///
    /// # Safety
    /// Requires AVX2+FMA. Lengths must match (checked by the safe caller).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let va = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i + 8 <= n {
            let y0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
            let y1 =
                _mm256_fmadd_pd(va, _mm256_loadu_pd(xp.add(i + 4)), _mm256_loadu_pd(yp.add(i + 4)));
            _mm256_storeu_pd(yp.add(i), y0);
            _mm256_storeu_pd(yp.add(i + 4), y1);
            i += 8;
        }
        while i + 4 <= n {
            let y0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
            _mm256_storeu_pd(yp.add(i), y0);
            i += 4;
        }
        while i < n {
            *yp.add(i) += alpha * *xp.add(i);
            i += 1;
        }
    }

    /// `y += alpha * A * x` for column-major `A` (`m x n`, stride `lda`),
    /// blocked four columns at a time so each load of `y` amortizes four
    /// column FMAs.
    ///
    /// # Safety
    /// Requires AVX2+FMA. `a` must expose `lda*(n-1)+m` elements, `x` at
    /// least `n`, `y` at least `m`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dgemv_add_avx2(
        m: usize,
        n: usize,
        alpha: f64,
        a: *const f64,
        lda: usize,
        x: *const f64,
        y: *mut f64,
    ) {
        debug_assert!(super::cpu_supported(), "dgemv_add_avx2 needs AVX2+FMA");
        debug_assert!(lda >= m || n <= 1, "A columns would overlap: lda = {lda}, m = {m}");
        debug_assert!(n == 0 || m == 0 || (!a.is_null() && !x.is_null() && !y.is_null()));
        let mut j = 0;
        while j + 4 <= n {
            let x0 = _mm256_set1_pd(alpha * *x.add(j));
            let x1 = _mm256_set1_pd(alpha * *x.add(j + 1));
            let x2 = _mm256_set1_pd(alpha * *x.add(j + 2));
            let x3 = _mm256_set1_pd(alpha * *x.add(j + 3));
            let c0 = a.add(j * lda);
            let c1 = a.add((j + 1) * lda);
            let c2 = a.add((j + 2) * lda);
            let c3 = a.add((j + 3) * lda);
            let mut i = 0;
            while i + 4 <= m {
                let mut v = _mm256_loadu_pd(y.add(i));
                v = _mm256_fmadd_pd(_mm256_loadu_pd(c0.add(i)), x0, v);
                v = _mm256_fmadd_pd(_mm256_loadu_pd(c1.add(i)), x1, v);
                v = _mm256_fmadd_pd(_mm256_loadu_pd(c2.add(i)), x2, v);
                v = _mm256_fmadd_pd(_mm256_loadu_pd(c3.add(i)), x3, v);
                _mm256_storeu_pd(y.add(i), v);
                i += 4;
            }
            while i < m {
                *y.add(i) += _mm256_cvtsd_f64(x0) * *c0.add(i)
                    + _mm256_cvtsd_f64(x1) * *c1.add(i)
                    + _mm256_cvtsd_f64(x2) * *c2.add(i)
                    + _mm256_cvtsd_f64(x3) * *c3.add(i);
                i += 1;
            }
            j += 4;
        }
        while j < n {
            let xa = alpha * *x.add(j);
            let va = _mm256_set1_pd(xa);
            let col = a.add(j * lda);
            let mut i = 0;
            while i + 4 <= m {
                let v = _mm256_fmadd_pd(va, _mm256_loadu_pd(col.add(i)), _mm256_loadu_pd(y.add(i)));
                _mm256_storeu_pd(y.add(i), v);
                i += 4;
            }
            while i < m {
                *y.add(i) += xa * *col.add(i);
                i += 1;
            }
            j += 1;
        }
    }

    /// AVX-512 variant of [`dgemv_t_avx2`]: same 4-column blocking with
    /// two accumulators per column, but 8-wide lanes (16 rows per
    /// iteration). Selected when the CPU additionally reports `avx512f`.
    ///
    /// # Safety
    /// Requires AVX-512F. Same layout contract as [`dgemv_t_avx2`].
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dgemv_t_avx512(
        m: usize,
        n: usize,
        alpha: f64,
        a: *const f64,
        lda: usize,
        x: *const f64,
        y: *mut f64,
    ) {
        debug_assert!(super::avx512_supported(), "dgemv_t_avx512 needs AVX-512F");
        debug_assert!(lda >= m || n <= 1, "A columns would overlap: lda = {lda}, m = {m}");
        debug_assert!(n == 0 || m == 0 || (!a.is_null() && !x.is_null() && !y.is_null()));
        let mut j = 0;
        while j + 4 <= n {
            let c0 = a.add(j * lda);
            let c1 = a.add((j + 1) * lda);
            let c2 = a.add((j + 2) * lda);
            let c3 = a.add((j + 3) * lda);
            let mut s00 = _mm512_setzero_pd();
            let mut s01 = _mm512_setzero_pd();
            let mut s10 = _mm512_setzero_pd();
            let mut s11 = _mm512_setzero_pd();
            let mut s20 = _mm512_setzero_pd();
            let mut s21 = _mm512_setzero_pd();
            let mut s30 = _mm512_setzero_pd();
            let mut s31 = _mm512_setzero_pd();
            let mut i = 0;
            while i + 16 <= m {
                let x0 = _mm512_loadu_pd(x.add(i));
                let x1 = _mm512_loadu_pd(x.add(i + 8));
                s00 = _mm512_fmadd_pd(_mm512_loadu_pd(c0.add(i)), x0, s00);
                s01 = _mm512_fmadd_pd(_mm512_loadu_pd(c0.add(i + 8)), x1, s01);
                s10 = _mm512_fmadd_pd(_mm512_loadu_pd(c1.add(i)), x0, s10);
                s11 = _mm512_fmadd_pd(_mm512_loadu_pd(c1.add(i + 8)), x1, s11);
                s20 = _mm512_fmadd_pd(_mm512_loadu_pd(c2.add(i)), x0, s20);
                s21 = _mm512_fmadd_pd(_mm512_loadu_pd(c2.add(i + 8)), x1, s21);
                s30 = _mm512_fmadd_pd(_mm512_loadu_pd(c3.add(i)), x0, s30);
                s31 = _mm512_fmadd_pd(_mm512_loadu_pd(c3.add(i + 8)), x1, s31);
                i += 16;
            }
            if i + 8 <= m {
                let x0 = _mm512_loadu_pd(x.add(i));
                s00 = _mm512_fmadd_pd(_mm512_loadu_pd(c0.add(i)), x0, s00);
                s10 = _mm512_fmadd_pd(_mm512_loadu_pd(c1.add(i)), x0, s10);
                s20 = _mm512_fmadd_pd(_mm512_loadu_pd(c2.add(i)), x0, s20);
                s30 = _mm512_fmadd_pd(_mm512_loadu_pd(c3.add(i)), x0, s30);
                i += 8;
            }
            let mut d0 = _mm512_reduce_add_pd(_mm512_add_pd(s00, s01));
            let mut d1 = _mm512_reduce_add_pd(_mm512_add_pd(s10, s11));
            let mut d2 = _mm512_reduce_add_pd(_mm512_add_pd(s20, s21));
            let mut d3 = _mm512_reduce_add_pd(_mm512_add_pd(s30, s31));
            while i < m {
                let xv = *x.add(i);
                d0 += *c0.add(i) * xv;
                d1 += *c1.add(i) * xv;
                d2 += *c2.add(i) * xv;
                d3 += *c3.add(i) * xv;
                i += 1;
            }
            *y.add(j) = alpha * d0;
            *y.add(j + 1) = alpha * d1;
            *y.add(j + 2) = alpha * d2;
            *y.add(j + 3) = alpha * d3;
            j += 4;
        }
        while j < n {
            let col = a.add(j * lda);
            let mut s0 = _mm512_setzero_pd();
            let mut i = 0;
            while i + 8 <= m {
                s0 = _mm512_fmadd_pd(_mm512_loadu_pd(col.add(i)), _mm512_loadu_pd(x.add(i)), s0);
                i += 8;
            }
            let mut d = _mm512_reduce_add_pd(s0);
            while i < m {
                d += *col.add(i) * *x.add(i);
                i += 1;
            }
            *y.add(j) = alpha * d;
            j += 1;
        }
    }

    /// `y[j] = alpha * dot(A[:, j], x)` for column-major `A` (`m x n`,
    /// stride `lda`), four columns per pass with two FMA accumulators per
    /// column — eight independent chains, and each load of `x` amortizes
    /// four column streams. This is the transpose counterpart of
    /// [`dgemv_add_avx2`]: the per-pivot `F` accumulation of the blocked
    /// CPQR is wall-to-wall these products.
    ///
    /// # Safety
    /// Requires AVX2+FMA. `a` must expose `lda*(n-1)+m` elements, `x` at
    /// least `m`, `y` at least `n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dgemv_t_avx2(
        m: usize,
        n: usize,
        alpha: f64,
        a: *const f64,
        lda: usize,
        x: *const f64,
        y: *mut f64,
    ) {
        debug_assert!(super::cpu_supported(), "dgemv_t_avx2 needs AVX2+FMA");
        debug_assert!(lda >= m || n <= 1, "A columns would overlap: lda = {lda}, m = {m}");
        debug_assert!(n == 0 || m == 0 || (!a.is_null() && !x.is_null() && !y.is_null()));
        let mut j = 0;
        while j + 4 <= n {
            let c0 = a.add(j * lda);
            let c1 = a.add((j + 1) * lda);
            let c2 = a.add((j + 2) * lda);
            let c3 = a.add((j + 3) * lda);
            let mut s00 = _mm256_setzero_pd();
            let mut s01 = _mm256_setzero_pd();
            let mut s10 = _mm256_setzero_pd();
            let mut s11 = _mm256_setzero_pd();
            let mut s20 = _mm256_setzero_pd();
            let mut s21 = _mm256_setzero_pd();
            let mut s30 = _mm256_setzero_pd();
            let mut s31 = _mm256_setzero_pd();
            let mut i = 0;
            while i + 8 <= m {
                let x0 = _mm256_loadu_pd(x.add(i));
                let x1 = _mm256_loadu_pd(x.add(i + 4));
                s00 = _mm256_fmadd_pd(_mm256_loadu_pd(c0.add(i)), x0, s00);
                s01 = _mm256_fmadd_pd(_mm256_loadu_pd(c0.add(i + 4)), x1, s01);
                s10 = _mm256_fmadd_pd(_mm256_loadu_pd(c1.add(i)), x0, s10);
                s11 = _mm256_fmadd_pd(_mm256_loadu_pd(c1.add(i + 4)), x1, s11);
                s20 = _mm256_fmadd_pd(_mm256_loadu_pd(c2.add(i)), x0, s20);
                s21 = _mm256_fmadd_pd(_mm256_loadu_pd(c2.add(i + 4)), x1, s21);
                s30 = _mm256_fmadd_pd(_mm256_loadu_pd(c3.add(i)), x0, s30);
                s31 = _mm256_fmadd_pd(_mm256_loadu_pd(c3.add(i + 4)), x1, s31);
                i += 8;
            }
            if i + 4 <= m {
                let x0 = _mm256_loadu_pd(x.add(i));
                s00 = _mm256_fmadd_pd(_mm256_loadu_pd(c0.add(i)), x0, s00);
                s10 = _mm256_fmadd_pd(_mm256_loadu_pd(c1.add(i)), x0, s10);
                s20 = _mm256_fmadd_pd(_mm256_loadu_pd(c2.add(i)), x0, s20);
                s30 = _mm256_fmadd_pd(_mm256_loadu_pd(c3.add(i)), x0, s30);
                i += 4;
            }
            let hsum = |v: __m256d| -> f64 {
                let lo = _mm256_castpd256_pd128(v);
                let hi = _mm256_extractf128_pd(v, 1);
                let q = _mm_add_pd(lo, hi);
                _mm_cvtsd_f64(_mm_add_sd(q, _mm_unpackhi_pd(q, q)))
            };
            let mut d0 = hsum(_mm256_add_pd(s00, s01));
            let mut d1 = hsum(_mm256_add_pd(s10, s11));
            let mut d2 = hsum(_mm256_add_pd(s20, s21));
            let mut d3 = hsum(_mm256_add_pd(s30, s31));
            while i < m {
                let xv = *x.add(i);
                d0 += *c0.add(i) * xv;
                d1 += *c1.add(i) * xv;
                d2 += *c2.add(i) * xv;
                d3 += *c3.add(i) * xv;
                i += 1;
            }
            *y.add(j) = alpha * d0;
            *y.add(j + 1) = alpha * d1;
            *y.add(j + 2) = alpha * d2;
            *y.add(j + 3) = alpha * d3;
            j += 4;
        }
        while j < n {
            let col = std::slice::from_raw_parts(a.add(j * lda), m);
            let xs = std::slice::from_raw_parts(x, m);
            *y.add(j) = alpha * dot_avx2(col, xs);
            j += 1;
        }
    }

    /// In-place vectorized `exp` (see [`super::vexp`] for the contract).
    ///
    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn vexp_avx2(xs: &mut [f64]) {
        debug_assert!(super::cpu_supported(), "vexp_avx2 needs AVX2+FMA");
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            _mm256_storeu_pd(p.add(i), exp4(_mm256_loadu_pd(p.add(i))));
            i += 4;
        }
        if i < n {
            let mut buf = [0.0f64; 4];
            buf[..n - i].copy_from_slice(&xs[i..]);
            _mm256_storeu_pd(buf.as_mut_ptr(), exp4(_mm256_loadu_pd(buf.as_ptr())));
            xs[i..].copy_from_slice(&buf[..n - i]);
        }
    }

    /// Largest input for which `exp` is finite.
    const EXP_HI: f64 = 709.782712893384;
    /// Smallest input for which `exp` is a normal double; below this the
    /// kernel flushes to zero (absolute error < 2.5e-308).
    const EXP_LO: f64 = -708.396418532264;
    /// Cody–Waite split of ln 2 for the argument reduction.
    const LN2_HI: f64 = 6.931471803691238e-1;
    const LN2_LO: f64 = 1.9082149292705877e-10;
    /// `1.5 * 2^52` — the round-to-int magic constant: for |n| < 2^51 the
    /// low mantissa bits of `n + MAGIC` hold `n` as a two's-complement
    /// integer.
    const MAGIC: f64 = 6755399441055744.0;

    /// 4-wide `exp`: round-to-nearest power-of-two argument reduction
    /// `x = n ln2 + r`, |r| <= ln2/2, degree-13 Taylor polynomial (Horner,
    /// truncation error < 1e-17 relative), and exponent reconstruction via
    /// integer bit manipulation.
    ///
    /// # Safety
    /// `#[target_feature]`: the caller must have verified AVX2 + FMA CPU
    /// support (all callers are themselves gated behind `cpu_supported`).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn exp4(x: __m256d) -> __m256d {
        let n = _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_mul_pd(x, _mm256_set1_pd(std::f64::consts::LOG2_E)),
        );
        let r = _mm256_fnmadd_pd(n, _mm256_set1_pd(LN2_HI), x);
        let r = _mm256_fnmadd_pd(n, _mm256_set1_pd(LN2_LO), r);
        // Taylor coefficients 1/k!, k = 13 down to 0.
        let mut p = _mm256_set1_pd(1.6059043836821613e-10);
        for c in [
            2.08767569878681e-9,
            2.505210838544172e-8,
            2.755731922398589e-7,
            2.755731922398589e-6,
            2.48015873015873e-5,
            1.984126984126984e-4,
            1.388888888888889e-3,
            8.333333333333333e-3,
            4.1666666666666664e-2,
            1.6666666666666666e-1,
            0.5,
            1.0,
            1.0,
        ] {
            p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c));
        }
        // 2^n in two steps, n = n1 + n2 with n1 ~ n/2: near the overflow
        // end n reaches 1024 (e.g. x = 709.5: exp(x) finite but 2^1024 is
        // not representable), so a single exponent insertion would saturate
        // to inf early. Each half stays comfortably inside the exponent
        // range. Bit trick per half: bits(ni + MAGIC) - bits(MAGIC) == ni.
        let magic_bits = MAGIC.to_bits() as i64;
        let n1 = _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
            _mm256_mul_pd(n, _mm256_set1_pd(0.5)),
        );
        let n2 = _mm256_sub_pd(n, n1);
        let pow2_half = |ni: __m256d| {
            let nb = _mm256_castpd_si256(_mm256_add_pd(ni, _mm256_set1_pd(MAGIC)));
            let expo = _mm256_add_epi64(nb, _mm256_set1_epi64x(1023 - magic_bits));
            _mm256_castsi256_pd(_mm256_slli_epi64::<52>(expo))
        };
        let res = _mm256_mul_pd(_mm256_mul_pd(p, pow2_half(n1)), pow2_half(n2));
        // Range ends and NaN: flush deep-negative to 0, saturate to +inf,
        // propagate NaN (applied last so it wins).
        let res = _mm256_blendv_pd(
            res,
            _mm256_setzero_pd(),
            _mm256_cmp_pd::<_CMP_LT_OQ>(x, _mm256_set1_pd(EXP_LO)),
        );
        let res = _mm256_blendv_pd(
            res,
            _mm256_set1_pd(f64::INFINITY),
            _mm256_cmp_pd::<_CMP_GT_OQ>(x, _mm256_set1_pd(EXP_HI)),
        );
        _mm256_blendv_pd(res, x, _mm256_cmp_pd::<_CMP_UNORD_Q>(x, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_flags() {
        // The override wins over the default/env; cpu_supported is fixed.
        let before = active();
        set_simd_enabled(false);
        assert!(!active());
        set_simd_enabled(true);
        assert_eq!(active(), cpu_supported());
        set_simd_enabled(before || cpu_supported());
        let feats = detected_features();
        assert!(!feats.is_empty());
    }

    #[test]
    fn vexp_matches_std_exp() {
        // Deterministic sweep over the argument ranges the kernels produce
        // (Gaussian: non-positive; general: both signs), plus tile-odd
        // lengths to exercise the masked tail.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut xs: Vec<f64> = (0..1021)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 1400.0 - 700.0
            })
            .collect();
        let want: Vec<f64> = xs.iter().map(|v| v.exp()).collect();
        vexp(&mut xs);
        for (i, (got, want)) in xs.iter().zip(&want).enumerate() {
            assert!(
                (got - want).abs() <= 1e-14 * want.abs(),
                "element {i}: {got} vs {want} (rel {})",
                (got - want).abs() / want.abs()
            );
        }
    }

    #[test]
    fn vexp_special_values() {
        let mut xs = [0.0, f64::NEG_INFINITY, f64::INFINITY, f64::NAN, -1000.0, 1000.0, -710.0];
        vexp(&mut xs);
        assert_eq!(xs[0], 1.0);
        assert_eq!(xs[1], 0.0);
        assert_eq!(xs[2], f64::INFINITY);
        assert!(xs[3].is_nan());
        assert_eq!(xs[4], 0.0);
        assert_eq!(xs[5], f64::INFINITY);
        // Subnormal range flushes to zero in the vector path; scalar path
        // returns the subnormal. Either way the absolute error is tiny.
        assert!(xs[6].abs() < 2.5e-308);
    }

    #[test]
    fn dist_epilogue_matches_scalar_and_clamps() {
        // Odd length exercises the vector tail; the coincident pair (g =
        // rn = cn) exercises the clamp.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        };
        for n in [1usize, 4, 7, 33] {
            let g0: Vec<f64> = (0..n).map(|_| rnd()).collect();
            let rn: Vec<f64> = (0..n).map(|_| rnd().abs() + 1.0).collect();
            let cn = 1.75;
            let mut g = g0.clone();
            dist_epilogue(&mut g, &rn, cn);
            for i in 0..n {
                let want = (-2.0f64).mul_add(g0[i], rn[i] + cn).max(0.0);
                assert_eq!(g[i], want, "n={n} i={i}");
                assert!(g[i] >= 0.0);
            }
        }
        // Exact cancellation: ‖x‖² + ‖x‖² − 2 x·x clamps to zero.
        let mut g = [3.0];
        dist_epilogue(&mut g, &[3.0], 3.0);
        assert_eq!(g[0], 0.0);
    }

    #[test]
    fn gsks_tile_matches_naive_both_paths() {
        for d in [1usize, 2, 3, 7, 16] {
            let xr: Vec<f64> =
                (0..GSKS_MR * d).map(|i| ((i * 13 % 29) as f64) * 0.3 - 2.0).collect();
            // Dimension-major packed sources.
            let ys: Vec<Vec<f64>> = (0..GSKS_NR)
                .map(|c| (0..d).map(|k| ((c * 7 + k * 3) % 11) as f64 * 0.5 - 1.0).collect())
                .collect();
            let mut yct = vec![0.0; GSKS_NR * d];
            for (c, y) in ys.iter().enumerate() {
                for (k, &v) in y.iter().enumerate() {
                    yct[k * GSKS_NR + c] = v;
                }
            }
            let mut out = [0.0f64; GSKS_MR * GSKS_NR];
            gsks_tile_8x4(&xr, &yct, d, &mut out);
            for r in 0..GSKS_MR {
                for c in 0..GSKS_NR {
                    let want: f64 = (0..d).map(|k| xr[r * d + k] * ys[c][k]).sum();
                    assert!(
                        (out[r * GSKS_NR + c] - want).abs() < 1e-12 * (1.0 + want.abs()),
                        "d={d} ({r},{c}): {} vs {want}",
                        out[r * GSKS_NR + c]
                    );
                }
            }
        }
    }
}
