//! Level-batched execution of small dense operations.
//!
//! The factorization and skeletonization sweeps execute thousands of
//! *small* dense ops (GEMMs, LU/Cholesky factorizations, multi-RHS
//! triangular solves) whose shapes repeat across the nodes of a tree
//! level. Calling them one node at a time pays per-call dispatch, pool
//! checkout, and rayon task overhead on every op. This module provides
//! the batch seam (Boukaram–Keyes H² execution model, ROADMAP item 4):
//!
//! * [`Arena`] — a plan/commit/carve packed operand store: callers *plan*
//!   every per-node scratch slot of a level first, one pooled checkout
//!   *commits* the whole level, and *carve* hands out disjoint [`MatMut`]
//!   windows (one pool round-trip per level instead of per node);
//! * [`BatchPlan`] — collects [`BatchOp`]s (GEMM, factorized multi-RHS
//!   solves) with their shapes, buckets same-shape ops into groups
//!   preserving insertion order, and executes each group as **one**
//!   parallel launch with a shape-uniform inner loop;
//! * [`batch_active`]/[`set_batch_enabled`] — the `KFDS_BATCH`
//!   kill-switch consumer: `off` routes every consumer back to the
//!   per-node reference path.
//!
//! Batching is a *scheduling* transformation only: every op runs the
//! identical kernel on identical operands, so results are bitwise equal
//! to the per-node path (the GEMM never splits its accumulation
//! dimension, and the solves are applied column-by-column either way).

use crate::chol::Cholesky;
use crate::lu::Lu;
use crate::mat::{MatMut, MatRef};
use crate::workspace::{self, WsVec};
use crate::Trans;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static BATCH_ENABLED: AtomicBool = AtomicBool::new(true);
static ENV_INIT: Once = Once::new();

/// `true` when the level-batched execution engine is active (the
/// default). Controlled by the registered `KFDS_BATCH` switch, sampled
/// once per process; [`set_batch_enabled`] overrides at runtime.
#[inline]
pub fn batch_active() -> bool {
    ENV_INIT.call_once(|| {
        if kfds_switches::KFDS_BATCH.is_off() {
            BATCH_ENABLED.store(false, Ordering::Relaxed);
        }
    });
    BATCH_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables the level-batched engine at runtime (overrides
/// `KFDS_BATCH`). With batching off, skeletonization/assembly/
/// factorization take the per-node `par_iter` reference path —
/// bitwise-identical results, per-node launch overhead. Used by the
/// perf-trajectory harness and the A/B property tests.
pub fn set_batch_enabled(on: bool) {
    let _ = batch_active(); // apply the env default first so it cannot clobber us
    BATCH_ENABLED.store(on, Ordering::Relaxed);
}

/// One planned `nrows x ncols` window inside an [`Arena`].
#[derive(Clone, Copy, Debug)]
struct Slot {
    offset: usize,
    nrows: usize,
    ncols: usize,
}

/// A packed per-level operand store with a plan → commit → carve
/// lifecycle:
///
/// 1. [`Arena::plan`] records the shape of every scratch matrix the level
///    needs and returns its slot id (no allocation happens);
/// 2. [`Arena::commit`] performs **one** pooled checkout sized for the
///    whole level;
/// 3. [`Arena::carve`] hands out every slot as a [`MatMut`] at once —
///    provably disjoint windows (sequential `split_at_mut`), so a
///    group-parallel launch can write all of them concurrently; after
///    the mutable phase, [`Arena::view`] re-reads any slot immutably.
///
/// Dropping the arena returns the single buffer to the workspace pool.
pub struct Arena {
    slots: Vec<Slot>,
    len: usize,
    buf: Option<WsVec>,
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl Arena {
    /// An empty arena in the planning phase.
    pub fn new() -> Self {
        // lint:allow(hot-path-alloc): slot metadata, one Vec per level — amortized over every node of the level (the pool handles the f64 payload).
        Arena { slots: Vec::with_capacity(64), len: 0, buf: None }
    }

    /// Plans an `nrows x ncols` column-major slot; returns its id.
    ///
    /// # Panics
    /// Panics if called after [`Arena::commit`].
    pub fn plan(&mut self, nrows: usize, ncols: usize) -> usize {
        assert!(self.buf.is_none(), "Arena::plan after commit");
        let id = self.slots.len();
        self.slots.push(Slot { offset: self.len, nrows, ncols });
        self.len += nrows * ncols;
        id
    }

    /// Number of planned slots.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total planned elements.
    pub fn planned_len(&self) -> usize {
        self.len
    }

    /// Materializes the arena: one pooled checkout for every planned
    /// slot. Slot contents are arbitrary until written through
    /// [`Arena::carve`].
    pub fn commit(&mut self) {
        assert!(self.buf.is_none(), "Arena::commit called twice");
        self.buf = Some(workspace::take(self.len));
    }

    /// Hands out **all** planned slots as disjoint mutable windows, in
    /// plan order. The disjointness is structural: slots are carved by
    /// sequential `split_at_mut` over strictly increasing offsets
    /// (debug-asserted), so no two returned views alias.
    ///
    /// # Panics
    /// Panics if the arena was not committed.
    pub fn carve(&mut self) -> Vec<MatMut<'_>> {
        let buf = self.buf.as_mut().expect("Arena::carve before commit");
        let mut rest: &mut [f64] = &mut buf[..];
        let mut consumed = 0usize;
        // lint:allow(hot-path-alloc): view headers, one Vec per carve (per level) — not per-op scratch.
        let mut out = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            // Plan order is offset order; every slot begins exactly where
            // the previous one ended, so the windows partition the buffer.
            debug_assert_eq!(s.offset, consumed, "arena slots must be contiguous and ordered");
            let (head, tail) = rest.split_at_mut(s.nrows * s.ncols);
            out.push(MatMut::from_parts(head, s.nrows, s.ncols, s.nrows));
            consumed += s.nrows * s.ncols;
            rest = tail;
        }
        debug_assert_eq!(consumed, self.len);
        out
    }

    /// Immutable view of one slot (valid after the mutable carve phase
    /// ends).
    pub fn view(&self, slot: usize) -> MatRef<'_> {
        let s = self.slots[slot];
        let buf = self.buf.as_ref().expect("Arena::view before commit");
        MatRef::from_parts(&buf[s.offset..s.offset + s.nrows * s.ncols], s.nrows, s.ncols, s.nrows)
    }
}

/// A factorized square system a batched solve can apply — the two leaf
/// factorization kinds plus the reduced-system LU.
#[derive(Clone, Copy)]
pub enum FactorRef<'a> {
    /// Partial-pivoted LU.
    Lu(&'a Lu),
    /// Cholesky.
    Cholesky(&'a Cholesky),
}

impl FactorRef<'_> {
    fn dim(&self) -> usize {
        match self {
            FactorRef::Lu(f) => f.dim(),
            FactorRef::Cholesky(f) => f.dim(),
        }
    }

    /// Column-by-column in-place solve — the same loop as the owned
    /// `solve_mat_inplace`, applied to a view (columns are contiguous in
    /// every batched destination).
    fn solve_mat_mut(&self, rhs: &mut MatMut<'_>) {
        for j in 0..rhs.ncols() {
            match self {
                FactorRef::Lu(f) => f.solve_inplace(rhs.col_mut(j)),
                FactorRef::Cholesky(f) => f.solve_inplace(rhs.col_mut(j)),
            }
        }
    }
}

/// One planned dense op. Shapes are read off the operands when the plan
/// buckets ops into same-shape groups.
pub enum BatchOp<'a> {
    /// `C = alpha * op(A) op(B) + beta * C` through [`crate::gemm`].
    Gemm {
        /// Scale on the product.
        alpha: f64,
        /// Left operand.
        a: MatRef<'a>,
        /// Transposition of `a`.
        ta: Trans,
        /// Right operand.
        b: MatRef<'a>,
        /// Transposition of `b`.
        tb: Trans,
        /// Scale on the destination.
        beta: f64,
        /// Destination.
        c: MatMut<'a>,
    },
    /// Multi-RHS in-place solve `rhs <- A^{-1} rhs` against a factorized
    /// system.
    Solve {
        /// The factorized system.
        f: FactorRef<'a>,
        /// Right-hand sides, overwritten with the solution.
        rhs: MatMut<'a>,
    },
}

/// Shape-bucketing key: op kind + every dimension that determines the
/// inner-loop structure (see [`BatchOp::shape_key`]).
type ShapeKey = (u8, usize, usize, usize, u8);

impl BatchOp<'_> {
    /// Shape-bucketing key: op kind + every dimension that determines the
    /// inner-loop structure. Two ops with equal keys run the identical
    /// instruction schedule, so grouping them keeps the microkernels hot.
    fn shape_key(&self) -> ShapeKey {
        match self {
            BatchOp::Gemm { a, ta, b: _, c, .. } => {
                let k = if matches!(ta, Trans::No) { a.ncols() } else { a.nrows() };
                (0, c.nrows(), c.ncols(), k, 0)
            }
            BatchOp::Solve { f, rhs } => {
                let kind = match f {
                    FactorRef::Lu(_) => 0u8,
                    FactorRef::Cholesky(_) => 1u8,
                };
                (1, f.dim(), rhs.ncols(), 0, kind)
            }
        }
    }

    fn run(self) {
        match self {
            BatchOp::Gemm { alpha, a, ta, b, tb, beta, c } => {
                crate::gemm(alpha, a, ta, b, tb, beta, c);
            }
            BatchOp::Solve { f, mut rhs } => f.solve_mat_mut(&mut rhs),
        }
    }
}

/// A collected batch of small dense ops, executed group-by-group with one
/// parallel launch per same-shape group.
pub struct BatchPlan<'a> {
    ops: Vec<BatchOp<'a>>,
}

impl Default for BatchPlan<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> BatchPlan<'a> {
    /// An empty plan.
    pub fn new() -> Self {
        // lint:allow(hot-path-alloc): op descriptors, one Vec per plan (per level) — amortized over every op it batches.
        BatchPlan { ops: Vec::with_capacity(64) }
    }

    /// Adds one op to the plan.
    pub fn push(&mut self, op: BatchOp<'a>) {
        self.ops.push(op);
    }

    /// Plans a GEMM (`C = alpha * op(A) op(B) + beta * C`).
    #[allow(clippy::too_many_arguments)]
    pub fn gemm(
        &mut self,
        alpha: f64,
        a: MatRef<'a>,
        ta: Trans,
        b: MatRef<'a>,
        tb: Trans,
        beta: f64,
        c: MatMut<'a>,
    ) {
        self.push(BatchOp::Gemm { alpha, a, ta, b, tb, beta, c });
    }

    /// Plans a factorized multi-RHS solve.
    pub fn solve(&mut self, f: FactorRef<'a>, rhs: MatMut<'a>) {
        self.push(BatchOp::Solve { f, rhs });
    }

    /// Number of planned ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no ops are planned.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes every planned op, bucketed into same-shape groups (first
    /// occurrence order) with one parallel launch per group. Returns the
    /// number of groups launched.
    ///
    /// Results are bitwise identical to running the ops one by one in
    /// insertion order: the ops of a plan write disjoint destinations by
    /// construction (the borrow checker enforces exclusive `MatMut`s),
    /// and each op's arithmetic is scheduling-invariant.
    pub fn execute(self) -> usize {
        let mut groups: Vec<(ShapeKey, Vec<BatchOp<'a>>)> =
            // lint:allow(hot-path-alloc): bucketing lists, one per execute (per level) — not per-op scratch.
            Vec::with_capacity(8);
        for op in self.ops {
            let key = op.shape_key();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, g)) => g.push(op),
                None => {
                    // lint:allow(hot-path-alloc): one list per shape group, few per level.
                    let mut g = Vec::with_capacity(16);
                    g.push(op);
                    groups.push((key, g));
                }
            }
        }
        let n_groups = groups.len();
        for (_, group) in groups {
            // One launch per shape group: uniform inner loop, split across
            // threads by rayon. A singleton group runs inline to skip the
            // launch overhead entirely.
            if group.len() == 1 {
                for op in group {
                    op.run();
                }
            } else {
                group.into_par_iter().for_each(BatchOp::run);
            }
        }
        n_groups
    }
}

/// Groups `items` by a shape key, preserving first-occurrence order of
/// groups and insertion order within each group; returns the grouped
/// index lists. The shared bucketing policy for batched launches that
/// cannot be expressed as [`BatchOp`]s (kernel-block evaluation,
/// LU/Cholesky factorization with owned outputs).
pub fn group_by_shape<T, K: PartialEq, F: Fn(&T) -> K>(
    items: &[T],
    key: F,
) -> Vec<(K, Vec<usize>)> {
    // lint:allow(hot-path-alloc): bucketing index lists, one call per level — not per-op scratch.
    let mut groups: Vec<(K, Vec<usize>)> = Vec::with_capacity(8);
    for (i, it) in items.iter().enumerate() {
        let k = key(it);
        match groups.iter_mut().find(|(g, _)| *g == k) {
            Some((_, idxs)) => idxs.push(i),
            None => {
                // lint:allow(hot-path-alloc): one index list per shape group, few per level.
                let mut idxs = Vec::with_capacity(16);
                idxs.push(i);
                groups.push((k, idxs));
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat;

    #[test]
    fn arena_slots_are_disjoint_and_ordered() {
        let mut a = Arena::new();
        let ids: Vec<usize> =
            [(3usize, 2usize), (4, 4), (1, 5), (2, 2)].iter().map(|&(m, n)| a.plan(m, n)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(a.planned_len(), 6 + 16 + 5 + 4);
        a.commit();
        {
            let mut slots = a.carve();
            assert_eq!(slots.len(), 4);
            // Stamp every slot with its id; overlap would clobber a stamp.
            for (id, s) in slots.iter_mut().enumerate() {
                for j in 0..s.ncols() {
                    for i in 0..s.nrows() {
                        s.set(i, j, id as f64 + 1.0);
                    }
                }
            }
        }
        for (id, &(m, n)) in [(3usize, 2usize), (4, 4), (1, 5), (2, 2)].iter().enumerate() {
            let v = a.view(id);
            assert_eq!((v.nrows(), v.ncols()), (m, n));
            for j in 0..n {
                for i in 0..m {
                    assert_eq!(v.get(i, j), id as f64 + 1.0, "slot {id} clobbered at ({i},{j})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "plan after commit")]
    fn arena_rejects_plan_after_commit() {
        let mut a = Arena::new();
        a.plan(2, 2);
        a.commit();
        a.plan(1, 1);
    }

    #[test]
    fn batch_gemm_matches_sequential() {
        let a1 = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.3 - 1.0);
        let b1 = Mat::from_fn(3, 5, |i, j| ((i + 2 * j) as f64 * 0.41).sin());
        let a2 = Mat::from_fn(4, 3, |i, j| ((i * 7 + j) as f64 * 0.2).cos());
        let b2 = Mat::from_fn(3, 5, |i, j| (i as f64) - (j as f64) * 0.5);
        let a3 = Mat::from_fn(2, 2, |i, j| (i + j) as f64);
        let b3 = Mat::from_fn(2, 2, |i, j| (i * 2 + j) as f64 * 0.1);

        // Reference: sequential gemm calls.
        let mut r1 = Mat::zeros(4, 5);
        let mut r2 = Mat::zeros(4, 5);
        let mut r3 = Mat::zeros(2, 2);
        crate::gemm(1.0, a1.rb(), Trans::No, b1.rb(), Trans::No, 0.0, r1.rb_mut());
        crate::gemm(2.0, a2.rb(), Trans::No, b2.rb(), Trans::No, 0.0, r2.rb_mut());
        crate::gemm(1.0, a3.rb(), Trans::No, b3.rb(), Trans::No, 0.0, r3.rb_mut());

        // Batched: two shape groups (4x5x3 twice, 2x2x2 once).
        let mut c1 = Mat::zeros(4, 5);
        let mut c2 = Mat::zeros(4, 5);
        let mut c3 = Mat::zeros(2, 2);
        let mut plan = BatchPlan::new();
        plan.gemm(1.0, a1.rb(), Trans::No, b1.rb(), Trans::No, 0.0, c1.rb_mut());
        plan.gemm(2.0, a2.rb(), Trans::No, b2.rb(), Trans::No, 0.0, c2.rb_mut());
        plan.gemm(1.0, a3.rb(), Trans::No, b3.rb(), Trans::No, 0.0, c3.rb_mut());
        let groups = plan.execute();
        assert_eq!(groups, 2, "two shape groups expected");
        assert_eq!(c1.as_slice(), r1.as_slice());
        assert_eq!(c2.as_slice(), r2.as_slice());
        assert_eq!(c3.as_slice(), r3.as_slice());
    }

    #[test]
    fn batch_solve_matches_sequential() {
        let spd = |seed: usize| {
            let g = Mat::from_fn(4, 4, |i, j| ((i * 5 + j + seed) as f64 * 0.37).sin());
            let mut s = Mat::zeros(4, 4);
            crate::gemm(1.0, g.rb(), Trans::Yes, g.rb(), Trans::No, 0.0, s.rb_mut());
            for i in 0..4 {
                s[(i, i)] += 4.0;
            }
            s
        };
        let lu = Lu::factor(spd(1)).expect("lu");
        let ch = Cholesky::factor(spd(2)).expect("chol");
        let rhs = Mat::from_fn(4, 3, |i, j| (i as f64 + 1.0) * (j as f64 - 1.0) + 0.25);

        let mut want_lu = rhs.clone();
        lu.solve_mat_inplace(&mut want_lu);
        let mut want_ch = rhs.clone();
        ch.solve_mat_inplace(&mut want_ch);

        let mut got_lu = rhs.clone();
        let mut got_ch = rhs.clone();
        let mut plan = BatchPlan::new();
        plan.solve(FactorRef::Lu(&lu), got_lu.rb_mut());
        plan.solve(FactorRef::Cholesky(&ch), got_ch.rb_mut());
        // Lu and Cholesky solves are distinct shape groups.
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.execute(), 2);
        assert_eq!(got_lu.as_slice(), want_lu.as_slice());
        assert_eq!(got_ch.as_slice(), want_ch.as_slice());
    }

    #[test]
    fn group_by_shape_preserves_order() {
        let shapes = [(2, 3), (4, 4), (2, 3), (4, 4), (1, 1)];
        let groups = group_by_shape(&shapes, |&s| s);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], ((2, 3), vec![0, 2]));
        assert_eq!(groups[1], ((4, 4), vec![1, 3]));
        assert_eq!(groups[2], ((1, 1), vec![4]));
    }

    #[test]
    fn switch_default_and_override() {
        // Default (env unset in the test harness): active; the override
        // round-trips.
        let prev = batch_active();
        set_batch_enabled(false);
        assert!(!batch_active());
        set_batch_enabled(true);
        assert!(batch_active());
        set_batch_enabled(prev);
    }
}
