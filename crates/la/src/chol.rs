//! Cholesky factorization (LAPACK `POTRF`/`POTRS` analogue).
//!
//! `λI + K` with a positive-definite kernel is symmetric positive
//! definite, so leaf diagonal blocks can be factorized at half the flops
//! of LU. A failed Cholesky (non-positive pivot) is also a *sharper*
//! instability detector than the LU pivot-ratio monitor: it certifies
//! that roundoff has pushed the compressed block indefinite — the §III
//! failure mode.

use crate::blas1::dot;
use crate::error::LaError;
use crate::mat::Mat;

/// A lower-triangular Cholesky factorization `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    /// Lower-triangular factor (upper triangle is garbage).
    l: Mat,
    /// `min_k L_kk² / max|A|` — conditioning proxy, same scale as the LU
    /// pivot-ratio monitor.
    min_pivot_ratio: f64,
}

impl Cholesky {
    /// Factorizes symmetric positive definite `a` (consumed; only the
    /// lower triangle is read).
    ///
    /// Returns [`LaError::Singular`] when a non-positive pivot certifies
    /// that the matrix is not numerically positive definite.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn factor(mut a: Mat) -> Result<Self, LaError> {
        let n = a.nrows();
        assert_eq!(a.ncols(), n, "Cholesky requires a square matrix");
        let amax = a.norm_max().max(f64::MIN_POSITIVE);
        let mut min_pivot_ratio = f64::INFINITY;
        for k in 0..n {
            // d = A[k,k] - sum_j L[k,j]^2 over the already-built row.
            let mut d = a[(k, k)];
            for j in 0..k {
                let lkj = a[(k, j)];
                d -= lkj * lkj;
            }
            if d <= 0.0 {
                return Err(LaError::Singular { step: k });
            }
            min_pivot_ratio = min_pivot_ratio.min(d / amax);
            let lkk = d.sqrt();
            a[(k, k)] = lkk;
            // Column update below the diagonal:
            // L[i,k] = (A[i,k] - sum_j L[i,j] L[k,j]) / L[k,k].
            // Column-major: accumulate with dots over the leading columns.
            let inv = 1.0 / lkk;
            for i in k + 1..n {
                let mut s = a[(i, k)];
                for j in 0..k {
                    s -= a[(i, j)] * a[(k, j)];
                }
                a[(i, k)] = s * inv;
            }
        }
        if n == 0 {
            min_pivot_ratio = 1.0;
        }
        Ok(Cholesky { l: a, min_pivot_ratio })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// `min_k L_kk² / max|A|` — small values signal near-indefiniteness.
    pub fn min_pivot_ratio(&self) -> f64 {
        self.min_pivot_ratio
    }

    /// Solves `A x = b` in place (`L Lᵀ x = b`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn solve_inplace(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "Cholesky solve: rhs length mismatch");
        // Forward: L y = b (L stored in the lower triangle, column-major).
        for j in 0..n {
            b[j] /= self.l[(j, j)];
            let xj = b[j];
            if xj != 0.0 {
                let col = &self.l.col(j)[j + 1..];
                crate::blas1::axpy(-xj, col, &mut b[j + 1..]);
            }
        }
        // Backward: Lᵀ x = y; row i of Lᵀ is column i of L.
        for i in (0..n).rev() {
            let col = &self.l.col(i)[i + 1..];
            let s = dot(col, &b[i + 1..]);
            b[i] = (b[i] - s) / self.l[(i, i)];
        }
    }

    /// Solves `A X = B` in place for a multi-column right-hand side.
    pub fn solve_mat_inplace(&self, b: &mut Mat) {
        assert_eq!(b.nrows(), self.dim(), "Cholesky solve: rhs rows mismatch");
        for j in 0..b.ncols() {
            self.solve_inplace(b.col_mut(j));
        }
    }

    /// `log det A = 2 Σ log L_kk` (useful for GP marginal likelihoods).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|k| self.l[(k, k)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Mat {
        let mut state = seed | 1;
        let b = Mat::from_fn(n, n, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        });
        let mut a = crate::gemm::matmul_op(&b, crate::Trans::Yes, &b, crate::Trans::No);
        for i in 0..n {
            a[(i, i)] += n as f64 * 0.5;
        }
        a
    }

    #[test]
    fn solve_recovers_solution() {
        for n in [1, 3, 8, 25] {
            let a = spd(n, n as u64 + 3);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin() + 0.2).collect();
            let mut b = vec![0.0; n];
            crate::blas2::gemv(1.0, a.rb(), &x_true, 0.0, &mut b);
            let c = Cholesky::factor(a).expect("SPD");
            c.solve_inplace(&mut b);
            for (u, v) in b.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn reconstruction() {
        let n = 10;
        let a = spd(n, 7);
        let c = Cholesky::factor(a.clone()).expect("SPD");
        for i in 0..n {
            for j in 0..n {
                let rec: f64 = (0..=i.min(j)).map(|k| c.l[(i, k)] * c.l[(j, k)]).sum();
                assert!((rec - a[(i, j)]).abs() < 1e-9 * a.norm_max());
            }
        }
    }

    #[test]
    fn matches_lu_solution() {
        let n = 16;
        let a = spd(n, 11);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let xc = {
            let mut x = b.clone();
            Cholesky::factor(a.clone()).expect("SPD").solve_inplace(&mut x);
            x
        };
        let xl = crate::Lu::factor(a).expect("LU").solve(&b);
        for (u, v) in xc.iter().zip(&xl) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_rejected() {
        let mut a = Mat::identity(3);
        a[(2, 2)] = -1.0;
        assert!(matches!(Cholesky::factor(a), Err(LaError::Singular { step: 2 })));
    }

    #[test]
    fn near_semidefinite_flagged() {
        let mut a = Mat::identity(4);
        a[(3, 3)] = 1e-13;
        let c = Cholesky::factor(a).expect("still positive");
        assert!(c.min_pivot_ratio() < 1e-12);
    }

    #[test]
    fn log_det_of_diagonal() {
        let mut a = Mat::identity(3);
        a[(0, 0)] = 4.0;
        a[(1, 1)] = 9.0;
        let c = Cholesky::factor(a).expect("SPD");
        assert!((c.log_det() - (36.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn multi_rhs() {
        let n = 8;
        let a = spd(n, 5);
        let mut b = Mat::from_fn(n, 2, |i, j| (i + j) as f64 * 0.3);
        let b0 = b.clone();
        let c = Cholesky::factor(a).expect("SPD");
        c.solve_mat_inplace(&mut b);
        for j in 0..2 {
            let mut col = b0.col(j).to_vec();
            c.solve_inplace(&mut col);
            assert_eq!(b.col(j), col.as_slice());
        }
    }
}
