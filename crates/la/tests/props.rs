//! Property-based tests for the dense linear algebra kernels.

use kfds_la::{gemm, interp_decomp, workspace, ColPivQr, Lu, Mat, Trans};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the global workspace-pool switch so they
/// cannot observe each other's toggles.
static POOL_TOGGLE: Mutex<()> = Mutex::new(());

/// Fills the thread-local pool with NaN-poisoned buffers of assorted
/// classes: any hot path that reads stale pooled data instead of fully
/// overwriting it will surface as a NaN mismatch.
fn poison_pool() {
    for log2 in [5usize, 8, 10, 12, 14, 16] {
        let mut w = workspace::take(1 << log2);
        w.fill(f64::NAN);
    }
}

/// `alpha*op(A)op(B) + beta*C` twice — pool off then pool on (with a
/// poisoned pool) — asserting bitwise-identical results.
fn assert_gemm_pool_invariant(a: &Mat, ta: Trans, b: &Mat, tb: Trans, m: usize, n: usize) {
    let _guard = POOL_TOGGLE.lock().unwrap();
    workspace::set_pool_enabled(false);
    let mut c_ref = Mat::zeros(m, n);
    gemm(1.5, a.rb(), ta, b.rb(), tb, 0.0, c_ref.rb_mut());
    workspace::set_pool_enabled(true);
    poison_pool();
    let mut c_pool = Mat::zeros(m, n);
    gemm(1.5, a.rb(), ta, b.rb(), tb, 0.0, c_pool.rb_mut());
    for j in 0..n {
        for i in 0..m {
            assert_eq!(
                c_ref[(i, j)].to_bits(),
                c_pool[(i, j)].to_bits(),
                "({i},{j}): pooled {} vs unpooled {}",
                c_pool[(i, j)],
                c_ref[(i, j)]
            );
        }
    }
}

#[test]
fn pooled_gemm_bitwise_identical_degenerate_shapes() {
    // m = 0, n = 1, k = 1 and friends: the pool must be a pure pass-through
    // even when requests round up to the minimum size class.
    for &(m, k, n) in &[(0usize, 4usize, 3usize), (1, 1, 1), (5, 1, 7), (1, 9, 1), (3, 2, 0)] {
        let a = Mat::from_fn(m, k, |i, j| ((i * 7 + j * 3) as f64 * 0.21).sin());
        let b = Mat::from_fn(k, n, |i, j| ((i * 5 + j * 11) as f64 * 0.13).cos());
        assert_gemm_pool_invariant(&a, Trans::No, &b, Trans::No, m, n);
    }
}

#[test]
fn pooled_gemm_bitwise_identical_tall_skinny() {
    // The row-split parallel path with pooled packing panels must agree
    // bitwise with the unpooled run.
    let (m, k, n) = (4096usize, 16usize, 8usize);
    let a = Mat::from_fn(m, k, |i, j| ((i * 13 + j) as f64 * 0.003).sin());
    let b = Mat::from_fn(k, n, |i, j| ((i + j * 17) as f64 * 0.07).cos());
    assert_gemm_pool_invariant(&a, Trans::No, &b, Trans::No, m, n);
}

#[test]
fn successive_pooled_shapes_do_not_alias() {
    // Different shapes back-to-back reuse the same size classes; each call
    // must behave as if its buffers were fresh.
    let _guard = POOL_TOGGLE.lock().unwrap();
    workspace::set_pool_enabled(true);
    poison_pool();
    let shapes = [(30usize, 7usize, 12usize), (4, 40, 2), (128, 3, 64), (7, 7, 7)];
    for &(m, k, n) in &shapes {
        let a = Mat::from_fn(m, k, |i, j| 1.0 + ((i + 2 * j) as f64 * 0.11).sin());
        let b = Mat::from_fn(k, n, |i, j| 1.0 + ((3 * i + j) as f64 * 0.05).cos());
        let c = kfds_la::matmul(&a, &b);
        for j in 0..n {
            for i in 0..m {
                let want: f64 = (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum();
                assert!(
                    (c[(i, j)] - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "shape ({m},{k},{n}) at ({i},{j}): {} vs {want}",
                    c[(i, j)]
                );
            }
        }
    }
}

fn mat_strategy(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Mat::from_col_major(m, n, data))
    })
}

fn square_mat_strategy(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-10.0f64..10.0, n * n).prop_map(move |data| {
            let mut a = Mat::from_col_major(n, n, data);
            // Diagonal boost keeps the matrices comfortably nonsingular so
            // the solve-accuracy property is well-posed.
            for i in 0..n {
                a[(i, i)] += 20.0;
            }
            a
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_naive(a in mat_strategy(12), b in mat_strategy(12)) {
        // Reshape b so the product is defined: use b's data with a.ncols rows.
        let k = a.ncols();
        let n = b.as_slice().len() / k.max(1);
        prop_assume!(n >= 1);
        let b = Mat::from_col_major(k, n, b.as_slice()[..k * n].to_vec());
        let mut c = Mat::zeros(a.nrows(), n);
        gemm(1.0, a.rb(), Trans::No, b.rb(), Trans::No, 0.0, c.rb_mut());
        for j in 0..n {
            for i in 0..a.nrows() {
                let want: f64 = (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum();
                prop_assert!((c[(i, j)] - want).abs() <= 1e-9 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn lu_solves_accurately(a in square_mat_strategy(16), xs in proptest::collection::vec(-5.0f64..5.0, 16)) {
        let n = a.nrows();
        let x_true = &xs[..n];
        let mut b = vec![0.0; n];
        kfds_la::blas2::gemv(1.0, a.rb(), x_true, 0.0, &mut b);
        let f = Lu::factor(a).unwrap();
        let x = f.solve(&b);
        for (u, v) in x.iter().zip(x_true) {
            prop_assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn cpqr_perm_is_bijection(a in mat_strategy(14)) {
        let n = a.ncols();
        let f = ColPivQr::factor_truncated(a, 0.0, usize::MAX);
        let mut seen = vec![false; n];
        for &p in f.perm() {
            prop_assert!(p < n && !seen[p]);
            seen[p] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cpqr_rdiag_nonincreasing(a in mat_strategy(14)) {
        let f = ColPivQr::factor_truncated(a, 0.0, usize::MAX);
        for w in f.rdiag().windows(2) {
            // Column pivoting guarantees this up to roundoff.
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-10));
        }
    }

    #[test]
    fn id_reconstructs_skeleton_columns(a in mat_strategy(12)) {
        let id = interp_decomp(a.clone(), 0.0, usize::MAX);
        let ask = a.select_cols(&id.skeleton);
        let rec = kfds_la::matmul(&ask, &id.proj);
        // With tol = 0 (full rank) the ID must reproduce A exactly
        // (up to roundoff amplified by the triangular solve).
        let scale = a.norm_max().max(1.0);
        let cond_slack = 1e-5; // pivoted QR keeps this moderate for random A
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                prop_assert!(
                    (rec[(i, j)] - a[(i, j)]).abs() <= cond_slack * scale,
                    "({i},{j}): {} vs {}", rec[(i, j)], a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn pooled_gemm_bitwise_identical_random_shapes(m in 0usize..24, k in 1usize..12, n in 1usize..12, seed in 0u64..1000) {
        let a = Mat::from_fn(m, k, |i, j| (((i * 7 + j * 3) as u64 + seed) as f64 * 0.17).sin());
        let b = Mat::from_fn(k, n, |i, j| (((i * 5 + j * 11) as u64 + seed) as f64 * 0.09).cos());
        assert_gemm_pool_invariant(&a, Trans::No, &b, Trans::No, m, n);
        // Transposed operands exercise the other packing loops.
        let at = a.transpose();
        assert_gemm_pool_invariant(&at, Trans::Yes, &b, Trans::No, m, n);
    }

    #[test]
    fn gemm_transpose_consistency(a in mat_strategy(10)) {
        // (A^T A) computed two ways must agree.
        let at = a.transpose();
        let g1 = kfds_la::matmul_op(&a, Trans::Yes, &a, Trans::No);
        let g2 = kfds_la::matmul(&at, &a);
        for j in 0..g1.ncols() {
            for i in 0..g1.nrows() {
                prop_assert!((g1[(i, j)] - g2[(i, j)]).abs() < 1e-9 * (1.0 + g1[(i, j)].abs()));
            }
        }
    }
}
