//! Property-based tests for the dense linear algebra kernels.

use kfds_la::{gemm, interp_decomp, ColPivQr, Lu, Mat, Trans};
use proptest::prelude::*;

fn mat_strategy(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Mat::from_col_major(m, n, data))
    })
}

fn square_mat_strategy(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-10.0f64..10.0, n * n).prop_map(move |data| {
            let mut a = Mat::from_col_major(n, n, data);
            // Diagonal boost keeps the matrices comfortably nonsingular so
            // the solve-accuracy property is well-posed.
            for i in 0..n {
                a[(i, i)] += 20.0;
            }
            a
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_naive(a in mat_strategy(12), b in mat_strategy(12)) {
        // Reshape b so the product is defined: use b's data with a.ncols rows.
        let k = a.ncols();
        let n = b.as_slice().len() / k.max(1);
        prop_assume!(n >= 1);
        let b = Mat::from_col_major(k, n, b.as_slice()[..k * n].to_vec());
        let mut c = Mat::zeros(a.nrows(), n);
        gemm(1.0, a.rb(), Trans::No, b.rb(), Trans::No, 0.0, c.rb_mut());
        for j in 0..n {
            for i in 0..a.nrows() {
                let want: f64 = (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum();
                prop_assert!((c[(i, j)] - want).abs() <= 1e-9 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn lu_solves_accurately(a in square_mat_strategy(16), xs in proptest::collection::vec(-5.0f64..5.0, 16)) {
        let n = a.nrows();
        let x_true = &xs[..n];
        let mut b = vec![0.0; n];
        kfds_la::blas2::gemv(1.0, a.rb(), x_true, 0.0, &mut b);
        let f = Lu::factor(a).unwrap();
        let x = f.solve(&b);
        for (u, v) in x.iter().zip(x_true) {
            prop_assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn cpqr_perm_is_bijection(a in mat_strategy(14)) {
        let n = a.ncols();
        let f = ColPivQr::factor_truncated(a, 0.0, usize::MAX);
        let mut seen = vec![false; n];
        for &p in f.perm() {
            prop_assert!(p < n && !seen[p]);
            seen[p] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cpqr_rdiag_nonincreasing(a in mat_strategy(14)) {
        let f = ColPivQr::factor_truncated(a, 0.0, usize::MAX);
        for w in f.rdiag().windows(2) {
            // Column pivoting guarantees this up to roundoff.
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-10));
        }
    }

    #[test]
    fn id_reconstructs_skeleton_columns(a in mat_strategy(12)) {
        let id = interp_decomp(a.clone(), 0.0, usize::MAX);
        let ask = a.select_cols(&id.skeleton);
        let rec = kfds_la::matmul(&ask, &id.proj);
        // With tol = 0 (full rank) the ID must reproduce A exactly
        // (up to roundoff amplified by the triangular solve).
        let scale = a.norm_max().max(1.0);
        let cond_slack = 1e-5; // pivoted QR keeps this moderate for random A
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                prop_assert!(
                    (rec[(i, j)] - a[(i, j)]).abs() <= cond_slack * scale,
                    "({i},{j}): {} vs {}", rec[(i, j)], a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn gemm_transpose_consistency(a in mat_strategy(10)) {
        // (A^T A) computed two ways must agree.
        let at = a.transpose();
        let g1 = kfds_la::matmul_op(&a, Trans::Yes, &a, Trans::No);
        let g2 = kfds_la::matmul(&at, &a);
        for j in 0..g1.ncols() {
            for i in 0..g1.nrows() {
                prop_assert!((g1[(i, j)] - g2[(i, j)]).abs() < 1e-9 * (1.0 + g1[(i, j)].abs()));
            }
        }
    }
}
