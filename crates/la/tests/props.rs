//! Property-based tests for the dense linear algebra kernels.

// Far too slow under the Miri interpreter (hundreds of proptest cases per
// property); the Miri lane runs the deterministic suite in `miri.rs`.
#![cfg(not(miri))]

use kfds_la::{gemm, interp_decomp, workspace, ColPivQr, Lu, Mat, Trans};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip the global workspace-pool switch so they
/// cannot observe each other's toggles.
static POOL_TOGGLE: Mutex<()> = Mutex::new(());

/// Fills the thread-local pool with NaN-poisoned buffers of assorted
/// classes: any hot path that reads stale pooled data instead of fully
/// overwriting it will surface as a NaN mismatch.
fn poison_pool() {
    for log2 in [5usize, 8, 10, 12, 14, 16] {
        let mut w = workspace::take(1 << log2);
        w.fill(f64::NAN);
    }
}

/// RAII guard: forces the SIMD kill-switch off for a scalar reference run
/// and restores the prior state on drop (including on panic). Must be used
/// while holding [`POOL_TOGGLE`]: the pool-bitwise tests assume the SIMD
/// mode does not flip between their paired runs.
struct SimdOff {
    was_active: bool,
}

impl SimdOff {
    fn new() -> Self {
        let was_active = kfds_la::simd::active();
        kfds_la::simd::set_simd_enabled(false);
        SimdOff { was_active }
    }
}

impl Drop for SimdOff {
    fn drop(&mut self) {
        kfds_la::simd::set_simd_enabled(self.was_active);
    }
}

/// Runs `gemm` with the SIMD microkernels and with the scalar fallback and
/// asserts agreement within the reassociation/FMA tolerance documented in
/// `kfds_la::simd` (`O(k · eps)` relative to the accumulated magnitude).
fn assert_gemm_simd_vs_scalar(m: usize, k: usize, n: usize, ta: Trans, tb: Trans, seed: u64) {
    let (ar, ac) = if matches!(ta, Trans::Yes) { (k, m) } else { (m, k) };
    let (br, bc) = if matches!(tb, Trans::Yes) { (n, k) } else { (k, n) };
    let a = Mat::from_fn(ar, ac, |i, j| (((i * 7 + j * 3) as u64 + seed) as f64 * 0.19).sin());
    let b = Mat::from_fn(br, bc, |i, j| (((i * 5 + j * 11) as u64 + seed) as f64 * 0.23).cos());
    let mut c_scalar = Mat::from_fn(m, n, |i, j| ((i + 2 * j) as f64 * 0.31).sin());
    let mut c_simd = c_scalar.clone();
    {
        let _off = SimdOff::new();
        gemm(1.25, a.rb(), ta, b.rb(), tb, 0.5, c_scalar.rb_mut());
    }
    gemm(1.25, a.rb(), ta, b.rb(), tb, 0.5, c_simd.rb_mut());
    let tol = 1e-13 * (k as f64 + 2.0);
    for j in 0..n {
        for i in 0..m {
            let (s, v) = (c_scalar[(i, j)], c_simd[(i, j)]);
            assert!(
                (s - v).abs() <= tol * (1.0 + s.abs()),
                "({m},{k},{n}) {ta:?}/{tb:?} at ({i},{j}): simd {v} vs scalar {s}"
            );
        }
    }
}

/// `alpha*op(A)op(B) + beta*C` twice — pool off then pool on (with a
/// poisoned pool) — asserting bitwise-identical results.
fn assert_gemm_pool_invariant(a: &Mat, ta: Trans, b: &Mat, tb: Trans, m: usize, n: usize) {
    let _guard = POOL_TOGGLE.lock().unwrap();
    workspace::set_pool_enabled(false);
    let mut c_ref = Mat::zeros(m, n);
    gemm(1.5, a.rb(), ta, b.rb(), tb, 0.0, c_ref.rb_mut());
    workspace::set_pool_enabled(true);
    poison_pool();
    let mut c_pool = Mat::zeros(m, n);
    gemm(1.5, a.rb(), ta, b.rb(), tb, 0.0, c_pool.rb_mut());
    for j in 0..n {
        for i in 0..m {
            assert_eq!(
                c_ref[(i, j)].to_bits(),
                c_pool[(i, j)].to_bits(),
                "({i},{j}): pooled {} vs unpooled {}",
                c_pool[(i, j)],
                c_ref[(i, j)]
            );
        }
    }
}

#[test]
fn pooled_gemm_bitwise_identical_degenerate_shapes() {
    // m = 0, n = 1, k = 1 and friends: the pool must be a pure pass-through
    // even when requests round up to the minimum size class.
    for &(m, k, n) in &[(0usize, 4usize, 3usize), (1, 1, 1), (5, 1, 7), (1, 9, 1), (3, 2, 0)] {
        let a = Mat::from_fn(m, k, |i, j| ((i * 7 + j * 3) as f64 * 0.21).sin());
        let b = Mat::from_fn(k, n, |i, j| ((i * 5 + j * 11) as f64 * 0.13).cos());
        assert_gemm_pool_invariant(&a, Trans::No, &b, Trans::No, m, n);
    }
}

#[test]
fn pooled_gemm_bitwise_identical_tall_skinny() {
    // The row-split parallel path with pooled packing panels must agree
    // bitwise with the unpooled run.
    let (m, k, n) = (4096usize, 16usize, 8usize);
    let a = Mat::from_fn(m, k, |i, j| ((i * 13 + j) as f64 * 0.003).sin());
    let b = Mat::from_fn(k, n, |i, j| ((i + j * 17) as f64 * 0.07).cos());
    assert_gemm_pool_invariant(&a, Trans::No, &b, Trans::No, m, n);
}

#[test]
fn successive_pooled_shapes_do_not_alias() {
    // Different shapes back-to-back reuse the same size classes; each call
    // must behave as if its buffers were fresh.
    let _guard = POOL_TOGGLE.lock().unwrap();
    workspace::set_pool_enabled(true);
    poison_pool();
    let shapes = [(30usize, 7usize, 12usize), (4, 40, 2), (128, 3, 64), (7, 7, 7)];
    for &(m, k, n) in &shapes {
        let a = Mat::from_fn(m, k, |i, j| 1.0 + ((i + 2 * j) as f64 * 0.11).sin());
        let b = Mat::from_fn(k, n, |i, j| 1.0 + ((3 * i + j) as f64 * 0.05).cos());
        let c = kfds_la::matmul(&a, &b);
        for j in 0..n {
            for i in 0..m {
                let want: f64 = (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum();
                assert!(
                    (c[(i, j)] - want).abs() <= 1e-9 * (1.0 + want.abs()),
                    "shape ({m},{k},{n}) at ({i},{j}): {} vs {want}",
                    c[(i, j)]
                );
            }
        }
    }
}

#[test]
fn simd_gemm_matches_scalar_edge_tiles() {
    // Shapes straddling the 8x6 register tile: partial rows (m < MR),
    // partial columns (n < NR), and the degenerate k in {0, 1} panels.
    let _guard = POOL_TOGGLE.lock().unwrap();
    let shapes = [
        (1usize, 1usize, 1usize),
        (7, 0, 5),
        (8, 1, 6),
        (5, 3, 2),
        (8, 6, 6),
        (9, 7, 13),
        (16, 5, 12),
        (23, 37, 11),
        (64, 16, 48),
    ];
    for &(m, k, n) in &shapes {
        for ta in [Trans::No, Trans::Yes] {
            for tb in [Trans::No, Trans::Yes] {
                assert_gemm_simd_vs_scalar(m, k, n, ta, tb, 0xabc + m as u64);
            }
        }
    }
}

#[test]
fn simd_gemm_matches_scalar_on_submatrix_views() {
    // Strided views (col_stride > nrows) through the microkernel's ldc
    // handling, writing into an interior window of a larger C.
    let _guard = POOL_TOGGLE.lock().unwrap();
    let big_a = Mat::from_fn(40, 30, |i, j| ((i * 3 + j * 7) as f64 * 0.11).sin());
    let big_b = Mat::from_fn(30, 25, |i, j| ((i * 5 + j) as f64 * 0.17).cos());
    let (m, k, n) = (21, 19, 13);
    let a = big_a.submatrix(4..4 + m, 6..6 + k);
    let b = big_b.submatrix(2..2 + k, 9..9 + n);
    let mut c_scalar = Mat::from_fn(33, 29, |i, j| ((i + j) as f64 * 0.05).sin());
    let mut c_simd = c_scalar.clone();
    {
        let _off = SimdOff::new();
        gemm(
            2.0,
            a,
            Trans::No,
            b,
            Trans::No,
            1.0,
            c_scalar.rb_mut().submatrix_mut(5..5 + m, 3..3 + n),
        );
    }
    gemm(2.0, a, Trans::No, b, Trans::No, 1.0, c_simd.rb_mut().submatrix_mut(5..5 + m, 3..3 + n));
    let tol = 1e-13 * (k as f64 + 2.0);
    for j in 0..29 {
        for i in 0..33 {
            let (s, v) = (c_scalar[(i, j)], c_simd[(i, j)]);
            let inside = (5..5 + m).contains(&i) && (3..3 + n).contains(&j);
            if inside {
                assert!((s - v).abs() <= tol * (1.0 + s.abs()), "({i},{j}): {v} vs {s}");
            } else {
                // Outside the target window both runs must leave C untouched.
                assert_eq!(s.to_bits(), v.to_bits(), "({i},{j}) clobbered outside the view");
            }
        }
    }
}

#[test]
fn simd_blas_matches_scalar() {
    let _guard = POOL_TOGGLE.lock().unwrap();
    for &n in &[1usize, 2, 3, 4, 7, 8, 9, 15, 16, 17, 31, 100, 1023] {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos()).collect();
        let tol = 1e-13 * (n as f64 + 2.0);

        let d_simd = kfds_la::blas1::dot(&x, &y);
        let mut ax_simd = y.clone();
        kfds_la::blas1::axpy(0.75, &x, &mut ax_simd);
        let (d_scalar, ax_scalar) = {
            let _off = SimdOff::new();
            let d = kfds_la::blas1::dot(&x, &y);
            let mut ax = y.clone();
            kfds_la::blas1::axpy(0.75, &x, &mut ax);
            (d, ax)
        };
        assert!((d_simd - d_scalar).abs() <= tol * (1.0 + d_scalar.abs()), "dot n={n}");
        for i in 0..n {
            assert!(
                (ax_simd[i] - ax_scalar[i]).abs() <= tol * (1.0 + ax_scalar[i].abs()),
                "axpy n={n} i={i}"
            );
        }
    }
    for &(m, n) in &[
        (1usize, 1usize),
        (3, 5),
        (4, 4),
        (5, 3),
        (8, 4),
        (9, 5),
        (17, 9),
        (33, 7),
        (64, 33),
        (128, 1),
    ] {
        let a = Mat::from_fn(m, n, |i, j| ((i * 3 + j * 5) as f64 * 0.21).sin());
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.43).cos()).collect();
        let xt: Vec<f64> = (0..m).map(|i| (i as f64 * 0.29).sin()).collect();
        let tol = 1e-13 * (m.max(n) as f64 + 2.0);

        let mut y_simd = vec![0.5; m];
        kfds_la::blas2::gemv(1.5, a.rb(), &x, 0.25, &mut y_simd);
        let mut yt_simd = vec![0.5; n];
        kfds_la::blas2::gemv_t(1.5, a.rb(), &xt, 0.25, &mut yt_simd);
        let (y_scalar, yt_scalar) = {
            let _off = SimdOff::new();
            let mut y = vec![0.5; m];
            kfds_la::blas2::gemv(1.5, a.rb(), &x, 0.25, &mut y);
            let mut yt = vec![0.5; n];
            kfds_la::blas2::gemv_t(1.5, a.rb(), &xt, 0.25, &mut yt);
            (y, yt)
        };
        for i in 0..m {
            assert!(
                (y_simd[i] - y_scalar[i]).abs() <= tol * (1.0 + y_scalar[i].abs()),
                "gemv ({m},{n}) row {i}"
            );
        }
        for j in 0..n {
            assert!(
                (yt_simd[j] - yt_scalar[j]).abs() <= tol * (1.0 + yt_scalar[j].abs()),
                "gemv_t ({m},{n}) row {j}"
            );
        }

        // beta == 0 takes the dedicated multi-column transposed kernels
        // (dgemv_t_avx512 / dgemv_t_avx2); exercise that path too.
        let mut yt0_simd = vec![f64::NAN; n];
        kfds_la::blas2::gemv_t(1.5, a.rb(), &xt, 0.0, &mut yt0_simd);
        let yt0_scalar = {
            let _off = SimdOff::new();
            let mut yt = vec![f64::NAN; n];
            kfds_la::blas2::gemv_t(1.5, a.rb(), &xt, 0.0, &mut yt);
            yt
        };
        for j in 0..n {
            assert!(
                (yt0_simd[j] - yt0_scalar[j]).abs() <= tol * (1.0 + yt0_scalar[j].abs()),
                "gemv_t beta=0 ({m},{n}) row {j}"
            );
        }
    }
}

fn mat_strategy(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Mat::from_col_major(m, n, data))
    })
}

fn square_mat_strategy(max_dim: usize) -> impl Strategy<Value = Mat> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-10.0f64..10.0, n * n).prop_map(move |data| {
            let mut a = Mat::from_col_major(n, n, data);
            // Diagonal boost keeps the matrices comfortably nonsingular so
            // the solve-accuracy property is well-posed.
            for i in 0..n {
                a[(i, i)] += 20.0;
            }
            a
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_naive(a in mat_strategy(12), b in mat_strategy(12)) {
        // Reshape b so the product is defined: use b's data with a.ncols rows.
        let k = a.ncols();
        let n = b.as_slice().len() / k.max(1);
        prop_assume!(n >= 1);
        let b = Mat::from_col_major(k, n, b.as_slice()[..k * n].to_vec());
        let mut c = Mat::zeros(a.nrows(), n);
        gemm(1.0, a.rb(), Trans::No, b.rb(), Trans::No, 0.0, c.rb_mut());
        for j in 0..n {
            for i in 0..a.nrows() {
                let want: f64 = (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum();
                prop_assert!((c[(i, j)] - want).abs() <= 1e-9 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn lu_solves_accurately(a in square_mat_strategy(16), xs in proptest::collection::vec(-5.0f64..5.0, 16)) {
        let n = a.nrows();
        let x_true = &xs[..n];
        let mut b = vec![0.0; n];
        kfds_la::blas2::gemv(1.0, a.rb(), x_true, 0.0, &mut b);
        let f = Lu::factor(a).unwrap();
        let x = f.solve(&b);
        for (u, v) in x.iter().zip(x_true) {
            prop_assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn cpqr_perm_is_bijection(a in mat_strategy(14)) {
        let n = a.ncols();
        let f = ColPivQr::factor_truncated(a, 0.0, usize::MAX);
        let mut seen = vec![false; n];
        for &p in f.perm() {
            prop_assert!(p < n && !seen[p]);
            seen[p] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cpqr_rdiag_nonincreasing(a in mat_strategy(14)) {
        let f = ColPivQr::factor_truncated(a, 0.0, usize::MAX);
        for w in f.rdiag().windows(2) {
            // Column pivoting guarantees this up to roundoff.
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-10));
        }
    }

    #[test]
    fn id_reconstructs_skeleton_columns(a in mat_strategy(12)) {
        let id = interp_decomp(a.clone(), 0.0, usize::MAX);
        let ask = a.select_cols(&id.skeleton);
        let rec = kfds_la::matmul(&ask, &id.proj);
        // With tol = 0 (full rank) the ID must reproduce A exactly
        // (up to roundoff amplified by the triangular solve).
        let scale = a.norm_max().max(1.0);
        let cond_slack = 1e-5; // pivoted QR keeps this moderate for random A
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                prop_assert!(
                    (rec[(i, j)] - a[(i, j)]).abs() <= cond_slack * scale,
                    "({i},{j}): {} vs {}", rec[(i, j)], a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn pooled_gemm_bitwise_identical_random_shapes(m in 0usize..24, k in 1usize..12, n in 1usize..12, seed in 0u64..1000) {
        let a = Mat::from_fn(m, k, |i, j| (((i * 7 + j * 3) as u64 + seed) as f64 * 0.17).sin());
        let b = Mat::from_fn(k, n, |i, j| (((i * 5 + j * 11) as u64 + seed) as f64 * 0.09).cos());
        assert_gemm_pool_invariant(&a, Trans::No, &b, Trans::No, m, n);
        // Transposed operands exercise the other packing loops.
        let at = a.transpose();
        assert_gemm_pool_invariant(&at, Trans::Yes, &b, Trans::No, m, n);
    }

    #[test]
    fn simd_gemm_matches_scalar_random_shapes(m in 1usize..28, k in 0usize..24, n in 1usize..20, seed in 0u64..1000) {
        let _guard = POOL_TOGGLE.lock().unwrap();
        assert_gemm_simd_vs_scalar(m, k, n, Trans::No, Trans::No, seed);
        assert_gemm_simd_vs_scalar(m, k, n, Trans::Yes, Trans::No, seed);
    }

    #[test]
    fn simd_vexp_matches_libm(xs in proptest::collection::vec(-750.0f64..750.0, 0..64)) {
        let _guard = POOL_TOGGLE.lock().unwrap();
        let mut got = xs.clone();
        kfds_la::simd::vexp(&mut got);
        for (x, g) in xs.iter().zip(&got) {
            let want = x.exp();
            if want.is_infinite() {
                prop_assert!(g.is_infinite() && *g > 0.0, "exp({x}): {g} vs inf");
            } else {
                prop_assert!(
                    (g - want).abs() <= 1e-14 * (1.0 + want.abs()),
                    "exp({x}): {g} vs {want}"
                );
            }
        }
    }

    #[test]
    fn gemm_transpose_consistency(a in mat_strategy(10)) {
        // (A^T A) computed two ways must agree.
        let at = a.transpose();
        let g1 = kfds_la::matmul_op(&a, Trans::Yes, &a, Trans::No);
        let g2 = kfds_la::matmul(&at, &a);
        for j in 0..g1.ncols() {
            for i in 0..g1.nrows() {
                prop_assert!((g1[(i, j)] - g2[(i, j)]).abs() < 1e-9 * (1.0 + g1[(i, j)].abs()));
            }
        }
    }
}
