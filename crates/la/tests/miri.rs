//! Deterministic suite for the Miri lane (`ci.sh --miri` runs
//! `cargo miri test -p kfds-la --test miri`).
//!
//! Small, fixed-size exercises of exactly the code where the unsafe
//! reasoning lives: `MatMut` raw-pointer views (element access, disjoint
//! splits, cross-thread sends), the workspace pool's `set_len`
//! round-trips, and the scalar BLAS paths those views feed. Under Miri,
//! `simd::cpu_supported()` is hard-wired `false`, so dispatch takes the
//! scalar reference paths the interpreter can check. The suite also runs
//! in every plain `cargo test` (it is fast), keeping it from bitrotting
//! between Miri-capable hosts.

use kfds_la::workspace;
use kfds_la::{blas1, blas2, gemm, Mat, MatMut, Trans};

#[test]
fn simd_dispatch_is_scalar_under_miri() {
    if cfg!(miri) {
        assert!(!kfds_la::simd::cpu_supported());
        assert!(!kfds_la::simd::avx512_supported());
        assert!(!kfds_la::simd::active());
    }
}

#[test]
fn matmut_views_read_and_write_in_bounds() {
    let mut m = Mat::from_fn(5, 4, |i, j| (i + 10 * j) as f64);
    let mut v = m.rb_mut();
    assert_eq!(v.get(4, 3), 34.0);
    v.set(2, 1, -1.0);
    v.col_mut(0)[0] = 7.0;
    assert_eq!(m[(2, 1)], -1.0);
    assert_eq!(m[(0, 0)], 7.0);
}

#[test]
fn matmut_disjoint_splits_cover_the_matrix() {
    let mut m = Mat::zeros(6, 6);
    {
        let (mut left, mut right) = m.rb_mut().split_at_col(2);
        for j in 0..left.ncols() {
            left.col_mut(j).fill(1.0);
        }
        let (mut top, mut bot) = right.rb_mut().split_at_row(3);
        for j in 0..top.ncols() {
            for i in 0..top.nrows() {
                top.set(i, j, 2.0);
            }
        }
        for j in 0..bot.ncols() {
            for i in 0..bot.nrows() {
                bot.set(i, j, 3.0);
            }
        }
    }
    let mut counts = [0usize; 4];
    for &x in m.as_slice() {
        counts[x as usize] += 1;
    }
    assert_eq!(counts, [0, 12, 12, 12], "splits must tile the matrix exactly");
}

#[test]
fn matmut_halves_solve_on_two_threads() {
    // The `unsafe impl Send for MatMut` contract, exercised: disjoint
    // halves of one allocation written from two scoped threads.
    let mut m = Mat::zeros(4, 8);
    let (mut left, mut right) = m.rb_mut().split_at_col(4);
    std::thread::scope(|s| {
        s.spawn(move || {
            for j in 0..left.ncols() {
                left.col_mut(j).fill(-1.0);
            }
        });
        s.spawn(move || {
            for j in 0..right.ncols() {
                right.col_mut(j).fill(1.0);
            }
        });
    });
    let sum: f64 = m.as_slice().iter().sum();
    assert_eq!(sum, 0.0);
    assert!(m.as_slice().iter().all(|&x| x == -1.0 || x == 1.0));
}

#[test]
fn workspace_pool_roundtrip_reuses_initialized_memory() {
    // take → write → drop (files via `set_len`) → take again: the pool
    // invariant says the recycled buffer is fully initialized.
    let len = 100; // non-power-of-two: exercises class rounding
    {
        let mut w = workspace::take(len);
        assert_eq!(w.len(), len);
        w.fill(3.5);
    }
    let w2 = workspace::take(len);
    assert_eq!(w2.len(), len);
    let _sum: f64 = w2.iter().sum(); // every element must be readable
    drop(w2);

    let z = workspace::take_zeroed(len);
    assert!(z.iter().all(|&x| x == 0.0), "take_zeroed must scrub recycled buffers");
}

#[test]
fn workspace_mat_and_detached_giveback() {
    let mut wm = workspace::take_mat_zeroed(7, 3);
    wm.col_mut(2)[6] = 9.0;
    assert_eq!(wm.rb().get(6, 2), 9.0);
    drop(wm);

    let m = workspace::take_mat_detached(5, 5);
    workspace::give_vec(m.into_vec()); // foreign buffer filed back safely
    let back = workspace::take(25);
    assert_eq!(back.len(), 25);
}

#[test]
fn scalar_blas_and_gemm_small_cases() {
    let x = [1.0, 2.0, 3.0, 4.0, 5.0];
    let mut y = [5.0, 4.0, 3.0, 2.0, 1.0];
    assert_eq!(blas1::dot(&x, &y), 35.0);
    blas1::axpy(2.0, &x, &mut y);
    assert_eq!(y, [7.0, 8.0, 9.0, 10.0, 11.0]);
    assert_eq!(blas1::iamax(&y), Some(4));

    let a = Mat::from_fn(3, 2, |i, j| (i + 1) as f64 * (j + 1) as f64);
    let mut out = vec![0.0; 3];
    blas2::gemv(1.0, a.rb(), &[1.0, 1.0], 0.0, &mut out);
    assert_eq!(out, vec![3.0, 6.0, 9.0]);

    let b = Mat::from_fn(2, 3, |i, j| (i == j) as usize as f64);
    let mut c = Mat::zeros(3, 3);
    gemm(1.0, a.rb(), Trans::No, b.rb(), Trans::No, 0.0, c.rb_mut());
    for i in 0..3 {
        for j in 0..2 {
            assert_eq!(c[(i, j)], a[(i, j)]);
        }
        assert_eq!(c[(i, 2)], 0.0);
    }
}

#[test]
#[should_panic(expected = "row swap out of range")]
fn swap_rows_rejects_out_of_range_indices() {
    // Out of range but still inside the allocation: without the bounds
    // assert this would silently swap elements of the next column.
    let mut m = Mat::zeros(3, 4);
    m.swap_rows(0, 3);
}

#[test]
#[should_panic(expected = "column swap out of range")]
fn swap_cols_rejects_out_of_range_indices() {
    let mut m = Mat::zeros(3, 4);
    m.swap_cols(4, 0);
}

#[test]
#[should_panic(expected = "view out of bounds")]
fn matmut_from_parts_rejects_short_slices() {
    let mut data = vec![0.0; 10];
    let _ = MatMut::from_parts(&mut data, 4, 3, 4); // needs 12
}
