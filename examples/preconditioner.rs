//! The factorization as a preconditioner (paper §I, "Limitations").
//!
//! A *loose-tolerance* (cheap) factorization of the compressed operator
//! `λI + K̃` preconditions GMRES on the **exact** `λI + K`: the Krylov
//! method supplies exact-operator accuracy, the factorization supplies
//! conditioning. This combines the two solver families when `K̃` alone is
//! not accurate enough for direct use.
//!
//! ```sh
//! cargo run --release --example preconditioner
//! ```

use kernel_fds::prelude::*;
use kernel_fds::solver::solve_exact_preconditioned;

fn main() {
    let n = 2048;
    let points = datasets::normal_embedded(n, 3, 10, 0.05, 31);
    let kernel = Gaussian::new(1.5);
    let lambda = 0.05; // small regularizer: moderately ill-conditioned

    println!("== factorization-preconditioned GMRES on the exact operator ==");
    println!("N = {n}, d = {}, h = {}, lambda = {lambda}", points.dim(), kernel.h);

    // Moderately loose skeletonization: cheaper than a tight one, and
    // accurate *relative to λ* — the requirement for `(λI+K̃)^{-1}` to
    // precondition `λI+K` is ‖K−K̃‖ ≲ λ, not machine precision.
    let t0 = std::time::Instant::now();
    let tree = BallTree::build(&points, 64);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-4).with_max_rank(96).with_neighbors(8),
    );
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda))
        .expect("factorization");
    println!("loose factorization: {:.2}s (tau = 1e-4, smax = 96)", t0.elapsed().as_secs_f64());
    let approx_err = approx_error_estimate(&st, &kernel, 1);
    println!("kernel approximation error of K~: {approx_err:.2e} (comparable to lambda: good preconditioner, mediocre direct solver)");

    let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 23) as f64 / 23.0) - 0.5).collect();
    let bp = st.tree().permute_vec(&b);
    let opts = GmresOptions { tol: 1e-9, max_iters: 250, ..Default::default() };

    // (a) Unpreconditioned GMRES on the exact operator.
    let op = kernel_fds::krylov::FnOp::new(n, |x: &[f64], y: &mut [f64]| {
        y.copy_from_slice(&exact_matvec(&st, &kernel, lambda, x));
    });
    let t1 = std::time::Instant::now();
    let plain = kernel_fds::krylov::gmres(&op, &bp, None, &opts);
    let t_plain = t1.elapsed().as_secs_f64();

    // (b) Right-preconditioned with the loose factorization.
    let t2 = std::time::Instant::now();
    let pre = solve_exact_preconditioned(&ft, &bp, &opts).expect("preconditioned");
    let t_pre = t2.elapsed().as_secs_f64();

    println!("\n                     iters   time      converged");
    println!("plain GMRES          {:>5}  {t_plain:>7.2}s  {}", plain.iters, plain.converged);
    println!("preconditioned       {:>5}  {t_pre:>7.2}s  {}", pre.iters, pre.converged);

    let applied = exact_matvec(&st, &kernel, lambda, &pre.x);
    let num: f64 = applied.iter().zip(&bp).map(|(a, c)| (a - c) * (a - c)).sum();
    let den: f64 = bp.iter().map(|v| v * v).sum();
    println!(
        "true residual of the preconditioned solution (exact operator): {:.2e}",
        (num / den).sqrt()
    );
    assert!(pre.converged);
    assert!(pre.iters < plain.iters || !plain.converged);
}
