//! Quickstart: factorize a regularized Gaussian kernel matrix and solve a
//! linear system with it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kernel_fds::prelude::*;

fn main() {
    // A dataset in the compressible regime: intrinsic dimension 4,
    // embedded in 16 ambient dimensions with noise (the paper's NORMAL
    // construction).
    let n = 4096;
    let points = datasets::normal_embedded(n, 4, 16, 0.05, 1);
    let kernel = Gaussian::new(2.0);
    let lambda = 1.0;

    println!("== kernel-fds quickstart ==");
    println!("N = {n}, d = {}, Gaussian h = {}, lambda = {lambda}", points.dim(), kernel.h);

    // Hierarchical representation: ball tree + ASKIT skeletonization.
    let t0 = std::time::Instant::now();
    let tree = BallTree::build(&points, 128);
    let skel_cfg = SkelConfig::default().with_tol(1e-5).with_max_rank(192).with_neighbors(16);
    let st = skeletonize(tree, &kernel, skel_cfg);
    println!(
        "setup: tree depth {}, {} skeleton points total, {:.2}s",
        st.tree().depth(),
        st.total_skeleton_size(),
        t0.elapsed().as_secs_f64()
    );

    // O(N log N) factorization of lambda*I + K~.
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda))
        .expect("factorization failed");
    let stats = ft.stats();
    println!(
        "factorization: {:.2}s, {:.2} GFLOP, {:.2} GFLOP/s, {:.1} MiB stored, max rank {}",
        stats.seconds,
        stats.flops / 1e9,
        stats.gflops(),
        stats.stored_bytes as f64 / (1024.0 * 1024.0),
        stats.max_rank
    );
    if stats.is_unstable() {
        println!("warning: instability detected (min pivot ratio {:.2e})", stats.min_pivot_ratio);
    }

    // Solve (lambda*I + K~) x = b.
    let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
    let t1 = std::time::Instant::now();
    let x = ft.solve(&b).expect("solve failed");
    println!("solve: {:.3}s", t1.elapsed().as_secs_f64());

    // Verify against the compressed operator (must be machine precision)
    // and against the exact kernel matrix (bounded by the ASKIT tolerance).
    let xp = st.tree().permute_vec(&x);
    let bp = st.tree().permute_vec(&b);
    let applied = hier_matvec(&st, &kernel, lambda, &xp);
    let r_compressed = rel_err(&applied, &bp);
    let exact = exact_matvec(&st, &kernel, lambda, &xp);
    let r_exact = rel_err(&exact, &bp);
    println!("residual vs compressed operator: {r_compressed:.3e}  (factorization exactness)");
    println!("residual vs exact kernel matrix: {r_exact:.3e}  (ASKIT approximation error)");
    assert!(r_compressed < 1e-8, "factorization should invert the compressed operator");
}

fn rel_err(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let den: f64 = b.iter().map(|v| v * v).sum();
    (num / den).sqrt()
}
