//! Cross-validation: the workflow the paper optimizes for.
//!
//! "The factorization has to be done for different values of λ during
//! cross-validation studies" (§I) — the skeletonization is λ-independent,
//! so a λ sweep re-factorizes over *shared* skeletons. This example runs
//! the sweep, reports per-λ cost/stability/accuracy, and then a small
//! `(h, λ)` grid search.
//!
//! ```sh
//! cargo run --release --example cross_validation
//! ```

use kernel_fds::prelude::*;
use kernel_fds::solver::{grid_search_gaussian, lambda_sweep};

fn main() {
    let (pts, labels) = datasets::two_class_annulus(2000, 3, 77);
    let train = pts.select(&(0..1600).collect::<Vec<_>>());
    let valid = pts.select(&(1600..2000).collect::<Vec<_>>());
    let y_train = &labels[..1600];
    let y_valid = &labels[1600..];

    println!("== lambda sweep over shared skeletons ==");
    let kernel = Gaussian::new(0.5);
    let t0 = std::time::Instant::now();
    let tree = BallTree::build(&train, 64);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-6).with_max_rank(128).with_neighbors(12),
    );
    println!("skeletonization (shared across all lambda): {:.2}s", t0.elapsed().as_secs_f64());

    let y_perm = st.tree().permute_vec(y_train);
    let lambdas = [100.0, 1.0, 1e-2, 1e-4, 1e-8];
    let entries = lambda_sweep(
        &st,
        &kernel,
        SolverConfig::default(),
        &lambdas,
        &y_perm,
        Some((&valid, y_valid)),
    );
    println!("\n| lambda | factor (s) | train residual | valid acc | stable |");
    println!("|---|---|---|---|---|");
    for e in &entries {
        println!(
            "| {:.0e} | {:.2} | {:.1e} | {} | {} |",
            e.lambda,
            e.factor_seconds,
            e.residual,
            e.accuracy.map(|a| format!("{:.1}%", 100.0 * a)).unwrap_or_default(),
            if e.unstable { "UNSTABLE (§III detector)" } else { "yes" }
        );
    }

    println!("\n== (h, lambda) grid search ==");
    let best = grid_search_gaussian(
        &train,
        y_train,
        &valid,
        y_valid,
        &[0.25, 0.5, 1.0],
        &[1.0, 1e-2, 1e-4],
        64,
        SkelConfig::default().with_tol(1e-6).with_max_rank(128).with_neighbors(12),
    );
    match best {
        Some((h, lambda, acc)) => {
            println!(
                "best: h = {h}, lambda = {lambda:.0e}, validation accuracy {:.1}%",
                100.0 * acc
            );
            assert!(acc > 0.9);
        }
        None => println!("no stable configuration found"),
    }
}
