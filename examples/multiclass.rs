//! One-vs-all multi-class classification with a single multi-RHS solve.
//!
//! The paper's MNIST experiment does one-vs-all binary classification for
//! a single digit (Table II); the multi-RHS solve makes the full
//! one-vs-all classifier essentially free: all class weight vectors share
//! one factorization of `λI + K̃`. Prediction uses the treecode evaluator
//! (skeleton-compressed `K(x, X) w`).
//!
//! ```sh
//! cargo run --release --example multiclass
//! ```

use kernel_fds::prelude::*;
use kernel_fds::solver::KernelRidgeMulti;
use kernel_fds::tree::datasets::normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Five "digit clusters" on a 3-D manifold embedded in 12-D.
    let n = 5000;
    let n_classes = 5;
    let d = 12;
    let mut rng = StdRng::seed_from_u64(21);
    let centers: Vec<f64> = (0..n_classes * d).map(|_| 3.0 * normal(&mut rng)).collect();
    let mut data = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.gen_range(0..n_classes);
        for k in 0..d {
            data.push(centers[c * d + k] + normal(&mut rng));
        }
        labels.push(c);
    }
    let mut pts = PointSet::from_col_major(d, data);
    pts.normalize();

    let n_train = n * 9 / 10;
    let train = pts.select(&(0..n_train).collect::<Vec<_>>());
    let test = pts.select(&(n_train..n).collect::<Vec<_>>());

    println!("== one-vs-all multiclass ridge classification ==");
    println!("N = {n_train} train / {} test, d = {d}, {n_classes} classes", test.len());
    let t0 = std::time::Instant::now();
    let model = KernelRidgeMulti::train(
        &train,
        &labels[..n_train],
        n_classes,
        Gaussian::new(1.0),
        128,
        SkelConfig::default().with_tol(1e-5).with_max_rank(128).with_neighbors(16),
        SolverConfig::default().with_lambda(1e-2),
    )
    .expect("training failed");
    println!(
        "train (tree + skeletons + 1 factorization + {n_classes}-RHS solve): {:.2}s",
        t0.elapsed().as_secs_f64()
    );

    let t1 = std::time::Instant::now();
    let acc = model.accuracy(&test, &labels[n_train..], 0.5);
    println!(
        "treecode prediction: {:.2}s, test accuracy {:.1}%",
        t1.elapsed().as_secs_f64(),
        100.0 * acc
    );
    assert!(acc > 0.9, "accuracy {acc}");
}
