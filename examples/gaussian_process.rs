//! Gaussian process regression with the fast direct solver.
//!
//! The GP posterior mean at test points is `K(X*, X) (K + σ²I)^{-1} y` —
//! exactly the regularized kernel solve the paper accelerates (kernel
//! matrices "appear in ... Gaussian process regression", §I). We fit a
//! noisy low-dimensional function embedded in a higher-dimensional space
//! and compare the fast posterior mean against an exact dense GP.
//!
//! ```sh
//! cargo run --release --example gaussian_process
//! ```

use kernel_fds::la::Lu;
use kernel_fds::prelude::*;

fn main() {
    let n = 1500;
    let d = 6;
    // Inputs on a smooth 2-D manifold in 6-D, targets = a smooth function
    // of the manifold coordinates plus observation noise.
    let pts = datasets::normal_embedded(n + 300, 2, d, 0.02, 11);
    let latent = |x: &[f64]| (1.3 * x[0]).sin() + 0.5 * (0.9 * x[1] + 0.2 * x[2]).cos();
    let noise = 0.05;
    let y_all: Vec<f64> = (0..pts.len())
        .map(|i| {
            // Deterministic pseudo-noise so the example is reproducible.
            let e = (((i as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 11) as f64
                / (1u64 << 53) as f64)
                * 2.0
                - 1.0;
            latent(pts.point(i)) + noise * e
        })
        .collect();

    let train_idx: Vec<usize> = (0..n).collect();
    let test_idx: Vec<usize> = (n..n + 300).collect();
    let train = pts.select(&train_idx);
    let test = pts.select(&test_idx);
    let y = &y_all[..n];

    let kernel = Gaussian::new(0.8);
    let sigma2 = noise * noise;
    println!("== Gaussian process regression ==");
    println!("N = {n} train, {} test, d = {d}, h = {}, sigma^2 = {sigma2}", test.len(), kernel.h);

    // Fast GP: (K + sigma^2 I)^{-1} y via the hierarchical factorization.
    let t0 = std::time::Instant::now();
    let tree = BallTree::build(&train, 96);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-7).with_max_rank(192).with_neighbors(16),
    );
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(sigma2))
        .expect("factorization");
    let alpha_perm = {
        let mut v = st.tree().permute_vec(y);
        ft.solve_in_place(&mut v).expect("solve");
        v
    };
    let fast_secs = t0.elapsed().as_secs_f64();

    // Posterior mean at the test points.
    let tp = st.tree().points();
    let fast_mean: Vec<f64> = (0..test.len())
        .map(|t| (0..n).map(|i| kernel.eval(test.point(t), tp.point(i)) * alpha_perm[i]).sum())
        .collect();

    // Exact dense GP for reference (O(N^3)).
    let t1 = std::time::Instant::now();
    let mut km = kernel_fds::kernels::eval_symmetric(&kernel, &train, 0..n);
    for i in 0..n {
        km[(i, i)] += sigma2;
    }
    let alpha_exact = Lu::factor(km).expect("dense LU").solve(y);
    let exact_secs = t1.elapsed().as_secs_f64();
    let exact_mean: Vec<f64> = (0..test.len())
        .map(|t| (0..n).map(|i| kernel.eval(test.point(t), train.point(i)) * alpha_exact[i]).sum())
        .collect();

    let rmse_latent =
        rmse(&fast_mean, &test_idx.iter().map(|&i| latent(pts.point(i))).collect::<Vec<_>>());
    let vs_exact = rmse(&fast_mean, &exact_mean);
    println!("fast GP   : {fast_secs:.2}s (tree + skeletonize + factor + solve)");
    println!("dense GP  : {exact_secs:.2}s (O(N^3) reference)");
    println!("posterior-mean RMSE vs latent function: {rmse_latent:.4}");
    println!("posterior-mean RMSE vs dense GP       : {vs_exact:.2e}");
    assert!(vs_exact < 1e-2, "fast GP should track the dense GP closely");

    // Model selection by the log marginal likelihood — the GP objective
    // that needs log det(K + sigma^2 I), which the hierarchical
    // factorization yields in O(N log N) via Sylvester's identity.
    println!("\n== bandwidth selection by fast log marginal likelihood ==");
    println!("| h | log marginal likelihood | seconds |");
    println!("|---|---|---|");
    let mut best: Option<(f64, f64)> = None;
    for h in [0.2, 0.4, 0.8, 1.6, 3.2] {
        let k = Gaussian::new(h);
        let t = std::time::Instant::now();
        let tree_h = BallTree::build(&train, 96);
        let st_h = skeletonize(
            tree_h,
            &k,
            SkelConfig::default().with_tol(1e-7).with_max_rank(192).with_neighbors(16),
        );
        let gp = kernel_fds::solver::GaussianProcess::fit(&st_h, &k, sigma2, y).expect("GP fit");
        let lml = gp.log_marginal_likelihood();
        println!("| {h} | {lml:.1} | {:.2} |", t.elapsed().as_secs_f64());
        if best.map(|(_, b)| lml > b).unwrap_or(true) {
            best = Some((h, lml));
        }
    }
    let (h_best, _) = best.expect("non-empty grid");
    println!("selected h = {h_best} (the smooth latent favors wide bandwidths here)");
}

fn rmse(a: &[f64], b: &[f64]) -> f64 {
    let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (s / a.len() as f64).sqrt()
}
