//! The hybrid direct/iterative solver under level restriction (§II-C).
//!
//! When off-diagonal blocks near the root stop being low rank, the
//! skeletonization is restricted to levels ≥ L and the full direct
//! factorization no longer exists. The hybrid scheme factorizes up to the
//! frontier and solves the reduced `2^L s` system with matrix-free GMRES.
//! This example compares it against plain unpreconditioned GMRES on
//! `λI + K̃` (the blue vs orange curves of Figure 5).
//!
//! ```sh
//! cargo run --release --example hybrid_solver
//! ```

use kernel_fds::prelude::*;

fn main() {
    let n = 4096;
    let points = datasets::normal_embedded(n, 4, 12, 0.05, 23);
    let kernel = Gaussian::new(0.6);
    let restriction = 3usize;

    println!("== hybrid level-restricted solver (L = {restriction}) ==");
    let tree = BallTree::build(&points, 128);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default()
            .with_tol(1e-6)
            .with_max_rank(128)
            .with_neighbors(16)
            .with_max_level(restriction),
    );
    println!(
        "frontier: {} nodes at level {restriction}; fully skeletonized: {}",
        st.frontier().len(),
        st.is_fully_skeletonized()
    );

    // λ chosen from the spectrum for a moderate condition number, as in
    // the Figure 5 experiments (λ = 10^{-3} σ₁).
    let sigma1 = estimate_sigma1(&st, &kernel, 40);
    let lambda = 1e-3 * sigma1;
    println!("sigma1(K~) ~= {sigma1:.3}, lambda = {lambda:.3e} (target kappa ~ 1e3)");

    let t0 = std::time::Instant::now();
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda))
        .expect("partial factorization");
    let tf = t0.elapsed().as_secs_f64();
    let hybrid = HybridSolver::new(&ft).expect("hybrid solver");
    println!("partial factorization: {tf:.2}s; reduced system dim = {}", hybrid.reduced_dim());

    let b: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    let bp = st.tree().permute_vec(&b);

    // (a) Unpreconditioned GMRES on λI + K̃ via the treecode matvec.
    let op = kernel_fds::krylov::FnOp::new(n, |x: &[f64], y: &mut [f64]| {
        y.copy_from_slice(&hier_matvec(&st, &kernel, lambda, x));
    });
    let opts = GmresOptions { tol: 1e-8, max_iters: 400, ..Default::default() };
    let t1 = std::time::Instant::now();
    let plain = kernel_fds::krylov::gmres(&op, &bp, None, &opts);
    let t_plain = t1.elapsed().as_secs_f64();

    // (b) Hybrid: direct below the frontier, GMRES on the reduced system.
    let t2 = std::time::Instant::now();
    let hy = hybrid.solve(&bp, &opts).expect("hybrid solve");
    let t_hybrid = t2.elapsed().as_secs_f64();

    let r_plain = residual(&st, &kernel, lambda, &plain.x, &bp);
    let r_hybrid = residual(&st, &kernel, lambda, &hy.x, &bp);
    println!("\n               iterations   time      relative residual");
    println!("plain GMRES    {:>6}      {t_plain:>7.2}s  {r_plain:.3e}", plain.iters);
    println!("hybrid         {:>6}      {t_hybrid:>7.2}s  {r_hybrid:.3e}", hy.gmres.iters);
    println!("\n(hybrid iterates on a {}-dim system instead of {n})", hybrid.reduced_dim());
    assert!(r_hybrid < 1e-7, "hybrid should invert the compressed operator");
}

fn residual(st: &SkeletonTree, kernel: &Gaussian, lambda: f64, x: &[f64], b: &[f64]) -> f64 {
    let applied = hier_matvec(st, kernel, lambda, x);
    let num: f64 = applied.iter().zip(b).map(|(u, v)| (u - v) * (u - v)).sum();
    let den: f64 = b.iter().map(|v| v * v).sum();
    (num / den).sqrt()
}
