//! Kernel ridge regression for binary classification — the learning task
//! the paper's evaluation is built around (§IV: "kernel ridge regression
//! for binary supervised classification").
//!
//! Trains `w = (λI + K̃)^{-1} y` with the fast direct solver on two
//! synthetic problems (a linearly separable one and a radial one where a
//! linear model must fail) and reports held-out accuracy, as in Table II.
//!
//! ```sh
//! cargo run --release --example ridge_regression
//! ```

use kernel_fds::prelude::*;

fn main() {
    println!("== kernel ridge regression (Table II-style accuracy runs) ==");
    run_case("two-gaussians (separable)", datasets::two_class_gaussians(3000, 8, 4.0, 7), 0.7, 1.0);
    run_case("annulus (radial, non-linear)", datasets::two_class_annulus(3000, 3, 9), 0.4, 1e-2);
}

fn run_case(name: &str, data: (PointSet, Vec<f64>), h: f64, lambda: f64) {
    let (pts, labels) = data;
    let n = pts.len();
    let n_train = n * 9 / 10;
    let train_idx: Vec<usize> = (0..n_train).collect();
    let test_idx: Vec<usize> = (n_train..n).collect();
    let train = pts.select(&train_idx);
    let test = pts.select(&test_idx);
    let y_train = &labels[..n_train];
    let y_test = &labels[n_train..];

    let kernel = Gaussian::new(h);
    let skel = SkelConfig::default().with_tol(1e-6).with_max_rank(192).with_neighbors(16);
    let solver = SolverConfig::default().with_lambda(lambda);
    let (model, report) =
        KernelRidge::train(&train, y_train, kernel, 128, skel, solver).expect("training failed");

    let train_acc = model.accuracy(&train, y_train);
    let test_acc = model.accuracy(&test, y_test);
    println!(
        "\n{name}: N={n_train} train / {} test, d={}, h={h}, lambda={lambda}",
        test.len(),
        pts.dim()
    );
    println!(
        "  setup {:.2}s | factorization {:.2}s | solve {:.3}s | train residual {:.2e}",
        report.setup_seconds, report.factor_seconds, report.solve_seconds, model.train_residual
    );
    println!("  accuracy: train {:.1}%, test {:.1}%", 100.0 * train_acc, 100.0 * test_acc);
    assert!(test_acc > 0.85, "{name}: test accuracy {test_acc} too low");
}
