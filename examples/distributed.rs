//! The distributed factorization and solve (Algorithms II.4/II.5) on the
//! simulated message-passing runtime.
//!
//! Each rank owns a subtree of the ball tree and factorizes it with the
//! serial `O(N log N)` algorithm; the `log₂ p` levels above are handled
//! with the paper's communication pattern — skeleton exchange between the
//! communicator roots, reductions of the partial coupling blocks, and
//! broadcast telescoping of the `P̂` row slices. The result must equal the
//! serial factorization bit-for-bit up to roundoff.
//!
//! ```sh
//! cargo run --release --example distributed
//! ```

use kernel_fds::prelude::*;

fn main() {
    let n = 8192;
    let points = datasets::normal_embedded(n, 4, 16, 0.05, 3);
    let kernel = Gaussian::new(1.0);
    let lambda = 1.0;

    println!("== distributed factorization (simulated MPI ranks) ==");
    let tree = BallTree::build(&points, 128);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(128).with_neighbors(16),
    );
    let cfg = SolverConfig::default().with_lambda(lambda);

    // Serial reference.
    let serial = factorize(&st, &kernel, cfg).expect("serial factorization");
    let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 97) as f64 / 97.0) - 0.5).collect();
    let bp = st.tree().permute_vec(&b);
    let mut x_serial = bp.clone();
    serial.solve_in_place(&mut x_serial).expect("serial solve");
    println!(
        "serial:   factorization {:.2}s ({} nodes)",
        serial.stats().seconds,
        st.tree().nodes().len()
    );

    for p in [2usize, 4, 8] {
        if st.tree().nodes_at_level(p.trailing_zeros() as usize).len() != p {
            println!("p={p}: tree not deep enough, skipping");
            continue;
        }
        let t0 = std::time::Instant::now();
        let ds = dist_factorize(&st, &kernel, cfg, p).expect("distributed factorization");
        let tf = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let x_dist = ds.solve(&bp);
        let ts = t1.elapsed().as_secs_f64();
        let err = rel_err(&x_dist, &x_serial);
        println!("p={p}: factorization {tf:.2}s, solve {ts:.3}s, vs-serial error {err:.2e}");
        assert!(err < 1e-9, "distributed result must match serial");
    }
    println!("\nall rank counts agree with the serial factorization.");
}

fn rel_err(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let den: f64 = b.iter().map(|v| v * v).sum();
    (num / den).sqrt()
}
