//! End-to-end determinism: every stage is seeded, so identical inputs must
//! produce bit-identical results — the property that makes the experiment
//! harnesses and EXPERIMENTS.md reproducible.

use kernel_fds::prelude::*;

fn pipeline_output(seed: u64) -> (usize, Vec<f64>) {
    let points = datasets::normal_embedded(384, 3, 8, 0.05, seed);
    let kernel = Gaussian::new(1.2);
    let tree = BallTree::build(&points, 32);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(64).with_neighbors(8).with_seed(9),
    );
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(0.5)).expect("f");
    let b: Vec<f64> = (0..384).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
    let x = ft.solve(&b).expect("solve");
    (st.total_skeleton_size(), x)
}

#[test]
fn full_pipeline_bit_deterministic() {
    let (s1, x1) = pipeline_output(7);
    let (s2, x2) = pipeline_output(7);
    assert_eq!(s1, s2, "skeleton sizes must match");
    assert_eq!(x1, x2, "solutions must be bit-identical");
}

#[test]
fn different_seeds_different_data() {
    let (_, x1) = pipeline_output(7);
    let (_, x2) = pipeline_output(8);
    assert_ne!(x1, x2);
}

#[test]
fn approximate_knn_deterministic() {
    let points = datasets::normal_embedded(300, 3, 40, 0.05, 3);
    let tree = BallTree::build(&points, 16);
    let a = kernel_fds::tree::knn_approximate(&tree, 6, 4, 11);
    let b = kernel_fds::tree::knn_approximate(&tree, 6, 4, 11);
    for i in 0..300 {
        assert_eq!(a.neighbors(i), b.neighbors(i));
    }
    // A different seed may produce different candidates.
    let c = kernel_fds::tree::knn_approximate(&tree, 6, 4, 12);
    let differs = (0..300).any(|i| a.neighbors(i) != c.neighbors(i));
    assert!(differs, "different tree seeds should explore different buckets");
}

#[test]
fn distributed_deterministic_across_runs() {
    let points = datasets::normal_embedded(256, 3, 8, 0.05, 21);
    let kernel = Gaussian::new(1.0);
    let tree = BallTree::build(&points, 32);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(64).with_neighbors(8),
    );
    let cfg = SolverConfig::default().with_lambda(0.4);
    let b: Vec<f64> = (0..256).map(|i| (i as f64 * 0.11).sin()).collect();
    let bp = st.tree().permute_vec(&b);
    let mut outs = Vec::new();
    for _ in 0..2 {
        let ds = dist_factorize(&st, &kernel, cfg, 4).expect("dist");
        outs.push(ds.solve(&bp));
    }
    // Thread scheduling varies between runs, but the communicator
    // dataflow is fixed, so results must be bit-identical.
    assert_eq!(outs[0], outs[1]);
}

#[test]
fn gmres_trace_deterministic_modulo_time() {
    let points = datasets::normal_embedded(200, 2, 6, 0.05, 31);
    let kernel = Gaussian::new(1.0);
    let tree = BallTree::build(&points, 16);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-6).with_max_rank(48).with_neighbors(6),
    );
    let op = kernel_fds::krylov::FnOp::new(200, |x: &[f64], y: &mut [f64]| {
        y.copy_from_slice(&hier_matvec(&st, &kernel, 1.0, x));
    });
    let b: Vec<f64> = (0..200).map(|i| ((i % 5) as f64) - 2.0).collect();
    let r1 = kernel_fds::krylov::gmres(&op, &b, None, &GmresOptions::default());
    let r2 = kernel_fds::krylov::gmres(&op, &b, None, &GmresOptions::default());
    assert_eq!(r1.iters, r2.iters);
    assert_eq!(r1.x, r2.x);
    let res1: Vec<f64> = r1.trace.iter().map(|t| t.residual).collect();
    let res2: Vec<f64> = r2.trace.iter().map(|t| t.residual).collect();
    assert_eq!(res1, res2);
}
