//! Property-based tests over the whole solver pipeline: for arbitrary
//! small configurations, the factorization must invert the compressed
//! operator and the tree/permutation invariants must hold.

use kernel_fds::prelude::*;
use proptest::prelude::*;

fn rel_err(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let den: f64 = b.iter().map(|v| v * v).sum();
    (num / den.max(1e-300)).sqrt()
}

proptest! {
    // Each case builds a full pipeline; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn solve_then_apply_is_identity(
        n in 96usize..320,
        m in 8usize..40,
        h in 0.4f64..3.0,
        lambda in 0.05f64..5.0,
        seed in 0u64..1000,
    ) {
        let points = datasets::normal_embedded(n, 2, 6, 0.05, seed);
        let kernel = Gaussian::new(h);
        let tree = BallTree::build(&points, m);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-6).with_max_rank(64).with_neighbors(6),
        );
        let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda))
            .expect("factorization");
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37 + seed as f64).sin()).collect();
        let x = ft.solve(&b).expect("solve");
        let xp = st.tree().permute_vec(&x);
        let bp = st.tree().permute_vec(&b);
        let applied = hier_matvec(&st, &kernel, lambda, &xp);
        let r = rel_err(&applied, &bp);
        prop_assert!(r < 1e-7, "residual {r} for n={n} m={m} h={h} lambda={lambda}");
    }

    #[test]
    fn tree_permutation_bijective(
        n in 10usize..500,
        m in 1usize..64,
        seed in 0u64..1000,
    ) {
        let points = datasets::uniform_cube(n, 3, seed);
        let tree = BallTree::build(&points, m);
        let mut seen = vec![false; n];
        for &p in tree.perm() {
            prop_assert!(p < n && !seen[p]);
            seen[p] = true;
        }
        // Nodes partition [0, n) level by level.
        for l in 0..=tree.depth() {
            let mut covered = 0usize;
            let mut nodes: Vec<_> = tree.nodes_at_level(l).to_vec();
            nodes.sort_by_key(|&i| tree.node(i).begin);
            for &i in &nodes {
                let nd = tree.node(i);
                prop_assert!(nd.begin <= nd.end && nd.end <= n);
                covered += nd.len();
            }
            // Levels below the deepest leaf may not cover everything
            // (leaves stop early), but no node may be empty.
            prop_assert!(covered <= n);
        }
    }

    #[test]
    fn permute_roundtrip(
        n in 2usize..300,
        seed in 0u64..1000,
    ) {
        let points = datasets::uniform_cube(n, 2, seed);
        let tree = BallTree::build(&points, 8);
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 1.5 - 3.0).collect();
        let rt = tree.unpermute_vec(&tree.permute_vec(&x));
        prop_assert_eq!(x, rt);
    }

    #[test]
    fn gmres_solves_shifted_kernel_systems(
        n in 64usize..200,
        h in 0.5f64..2.0,
        seed in 0u64..100,
    ) {
        // λI + K with λ = 1 is well conditioned; GMRES on the treecode
        // operator must converge.
        let points = datasets::normal_embedded(n, 2, 5, 0.05, seed);
        let kernel = Gaussian::new(h);
        let tree = BallTree::build(&points, 16);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(1e-6).with_max_rank(48).with_neighbors(6),
        );
        let op = kernel_fds::krylov::FnOp::new(n, |x: &[f64], y: &mut [f64]| {
            y.copy_from_slice(&hier_matvec(&st, &kernel, 1.0, x));
        });
        let b: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let res = kernel_fds::krylov::gmres(&op, &b, None, &GmresOptions::default());
        prop_assert!(res.converged, "residual {}", res.residual);
    }
}
