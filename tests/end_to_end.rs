//! Cross-crate integration tests: the full pipeline from raw points to a
//! verified solve, through the public API only.

use kernel_fds::prelude::*;

fn rel_err(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let den: f64 = b.iter().map(|v| v * v).sum();
    (num / den.max(1e-300)).sqrt()
}

fn pipeline(n: usize, h: f64, lambda: f64, tol: f64, seed: u64) -> f64 {
    let points = datasets::normal_embedded(n, 3, 10, 0.05, seed);
    let kernel = Gaussian::new(h);
    let tree = BallTree::build(&points, 32);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(tol).with_max_rank(96).with_neighbors(8),
    );
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda))
        .expect("factorization");
    let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.73).cos()).collect();
    let x = ft.solve(&b).expect("solve");
    // Residual against the compressed operator in permuted space.
    let xp = st.tree().permute_vec(&x);
    let bp = st.tree().permute_vec(&b);
    let applied = hier_matvec(&st, &kernel, lambda, &xp);
    rel_err(&applied, &bp)
}

#[test]
fn full_pipeline_inverts_operator() {
    let r = pipeline(768, 1.0, 0.8, 1e-5, 1);
    assert!(r < 1e-9, "residual {r}");
}

#[test]
fn pipeline_across_bandwidths() {
    // Small h (nearly diagonal), moderate, and large (nearly rank one):
    // the factorization must invert the compressed operator in all
    // regimes (the regimes of the paper's intro discussion).
    for (h, lambda) in [(0.2, 1.0), (1.0, 0.5), (5.0, 1.0)] {
        let r = pipeline(512, h, lambda, 1e-5, 2);
        assert!(r < 1e-8, "h={h}: residual {r}");
    }
}

#[test]
fn pipeline_lambda_sweep_cross_validation_style() {
    // The factorization is recomputed per λ during cross-validation
    // (paper §I); verify several λ against the same skeletons.
    let points = datasets::normal_embedded(512, 3, 8, 0.05, 3);
    let kernel = Gaussian::new(1.0);
    let tree = BallTree::build(&points, 32);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(96).with_neighbors(8),
    );
    let b: Vec<f64> = (0..512).map(|i| (i as f64 * 0.11).sin()).collect();
    let bp = st.tree().permute_vec(&b);
    for lambda in [10.0, 1.0, 0.1, 0.01] {
        let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(lambda))
            .expect("factorization");
        let mut x = bp.clone();
        ft.solve_in_place(&mut x).expect("solve");
        let applied = hier_matvec(&st, &kernel, lambda, &x);
        let r = rel_err(&applied, &bp);
        assert!(r < 1e-7, "lambda={lambda}: residual {r}");
    }
}

#[test]
fn hybrid_and_direct_equivalent_through_public_api() {
    let points = datasets::normal_embedded(512, 3, 8, 0.05, 5);
    let kernel = Gaussian::new(1.2);
    let tree = BallTree::build(&points, 32);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-6).with_max_rank(96).with_neighbors(8),
    );
    let ft = factorize(&st, &kernel, SolverConfig::default().with_lambda(0.3)).expect("f");
    let hy = HybridSolver::new(&ft).expect("hybrid");
    let b: Vec<f64> = (0..512).map(|i| ((7 * i % 13) as f64) - 6.0).collect();
    let direct = ft.solve(&b).expect("direct");
    let opts = GmresOptions { tol: 1e-12, ..Default::default() };
    let hybrid = hy.solve_original_order(&b, &opts).expect("hybrid");
    assert!(rel_err(&hybrid.x, &direct) < 1e-8);
}

#[test]
fn distributed_pipeline_through_public_api() {
    let points = datasets::normal_embedded(512, 3, 8, 0.05, 7);
    let kernel = Gaussian::new(1.0);
    let tree = BallTree::build(&points, 32);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-5).with_max_rank(96).with_neighbors(8),
    );
    let cfg = SolverConfig::default().with_lambda(0.5);
    let serial = factorize(&st, &kernel, cfg).expect("serial");
    let ds = dist_factorize(&st, &kernel, cfg, 4).expect("distributed");
    let b: Vec<f64> = (0..512).map(|i| (i as f64 * 0.31).cos()).collect();
    let bp = st.tree().permute_vec(&b);
    let mut want = bp.clone();
    serial.solve_in_place(&mut want).expect("serial solve");
    let got = ds.solve(&bp);
    assert!(rel_err(&got, &want) < 1e-9);
}

#[test]
fn approximation_error_tracks_tolerance() {
    // Tighter τ must not worsen the kernel approximation (monotone-ish);
    // loose and tight runs bracket the expected orders of magnitude.
    let points = datasets::normal_embedded(512, 2, 6, 0.05, 9);
    let kernel = Gaussian::new(1.5);
    let mut errs = Vec::new();
    for tol in [1e-2, 1e-6] {
        let tree = BallTree::build(&points, 32);
        let st = skeletonize(
            tree,
            &kernel,
            SkelConfig::default().with_tol(tol).with_max_rank(160).with_neighbors(12),
        );
        errs.push(approx_error_estimate(&st, &kernel, 2));
    }
    assert!(errs[1] < errs[0], "tight tolerance should approximate better: {errs:?}");
    assert!(errs[1] < 1e-4, "tight tolerance error {}", errs[1]);
}

#[test]
fn unstable_configuration_is_flagged_not_wrong() {
    // λ ~ 0 with a flat kernel: either an error or a raised flag, never a
    // silently wrong "success".
    let points = datasets::normal_embedded(256, 2, 5, 0.05, 11);
    let kernel = Gaussian::new(30.0);
    let tree = BallTree::build(&points, 32);
    let st = skeletonize(
        tree,
        &kernel,
        SkelConfig::default().with_tol(1e-7).with_max_rank(64).with_neighbors(8),
    );
    match factorize(&st, &kernel, SolverConfig::default().with_lambda(1e-13)) {
        Ok(ft) => assert!(ft.stats().is_unstable()),
        Err(SolverError::Factorization { .. }) => {}
        Err(other) => panic!("unexpected error {other}"),
    }
}
