#!/usr/bin/env bash
# Regenerates every table/figure of the paper into results/.
# Run serially — timing fidelity requires an otherwise-idle machine.
set -u
cd "$(dirname "$0")"
mkdir -p results
cargo build --release -p kfds-bench --bins
for b in table1_gsks table2_datasets table3_factorization table4_single_node \
         fig4_scaling table5_hybrid fig5_convergence ablations; do
    echo "=== $b ==="
    ./target/release/$b "$@" > results/$b.txt 2>&1 \
        && echo "    ok -> results/$b.txt" \
        || echo "    FAILED (see results/$b.txt)"
done
